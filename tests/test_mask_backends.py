"""Equivalence and edge-case suite for the position-mask backends.

The contract (``repro.core.masks``): every backend — ``bigint``,
``chunked``, ``numpy`` — is bit-exact interchangeable.  Mining-visible
quantities are exact integers/booleans, so merge sequences, database
snapshots and DL floats must be identical whichever backend the
database was built on.  This file pins that contract three ways:

* backend-op unit tests against the bigint reference, with the chunk
  boundaries exercised explicitly (bit 0, last/first bit of a chunk,
  empty overlaps);
* randomized whole-pipeline equivalence on the existing generators
  (identical merge sequences, snapshots and DL floats across backends,
  for both search variants);
* hypothesis property tests over random bit sets and random graphs.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CSPMConfig
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.inverted_db import InvertedDatabase
from repro.core.masks import (
    AUTO_CHUNKED_MIN_BITS,
    MASK_BACKENDS,
    BigintMaskBackend,
    ChunkedMaskBackend,
    bigint_mask_bytes,
    get_backend,
    resolve_backend,
)
from repro.core.masks.numpy_chunked import NumpyChunkedMaskBackend
from repro.core.mdl import description_length, initial_description_length
from repro.errors import ConfigError, MiningError
from repro.graphs.generators import PlantedAStar, planted_astar_graph

BACKEND_NAMES = ("bigint", "chunked", "numpy")

# Small-chunk variants stress the chunk boundaries far harder than the
# production defaults on the same bit ranges.
ALL_BACKENDS = [
    BigintMaskBackend(),
    ChunkedMaskBackend(),
    ChunkedMaskBackend(chunk_bits=64),
    NumpyChunkedMaskBackend(),
    NumpyChunkedMaskBackend(chunk_bits=64),
]

# Bits chosen to land on every interesting boundary of 64/256/1024-bit
# chunks: bit 0, last bit of a chunk, first bit of the next.
BOUNDARY_BITS = (0, 1, 63, 64, 65, 255, 256, 257, 511, 1023, 1024, 1025)


def ref_mask(bits):
    out = 0
    for bit in bits:
        out |= 1 << bit
    return out


@pytest.fixture(params=ALL_BACKENDS, ids=lambda b: repr(b))
def backend(request):
    return request.param


class TestBackendOps:
    """Each backend against the plain-int reference semantics."""

    def test_empty_is_empty(self, backend):
        empty = backend.empty()
        assert backend.is_empty(empty)
        assert backend.popcount(empty) == 0
        assert list(backend.iter_bits(empty)) == []
        assert not backend.union_overlaps(empty, empty)

    def test_make_iter_roundtrip_on_boundaries(self, backend):
        mask = backend.make(BOUNDARY_BITS)
        assert list(backend.iter_bits(mask)) == sorted(BOUNDARY_BITS)
        assert backend.popcount(mask) == len(BOUNDARY_BITS)
        for bit in BOUNDARY_BITS:
            assert backend.has_bit(mask, bit)
        for bit in (2, 62, 66, 254, 258, 1022, 1026):
            assert not backend.has_bit(mask, bit)

    def test_set_bit_matches_make(self, backend):
        mask = backend.empty()
        for bit in BOUNDARY_BITS:
            mask = backend.set_bit(mask, bit)
            mask = backend.set_bit(mask, bit)  # idempotent
        assert backend.equals(mask, backend.make(BOUNDARY_BITS))

    def test_make_batch_matches_make(self, backend):
        # The columnar builder's bulk materialiser: ascending input,
        # duplicates allowed, one mask per list, boundary bits heavy.
        bit_lists = [
            [],
            [0],
            [5, 5, 70, 300],
            sorted(BOUNDARY_BITS),
            sorted(BOUNDARY_BITS) + [1025, 1025],
            [63, 64],
            [2000],
        ]
        built = backend.make_batch(bit_lists)
        assert len(built) == len(bit_lists)
        for bits, mask in zip(bit_lists, built):
            assert backend.equals(mask, backend.make(bits)), bits
            assert list(backend.iter_bits(mask)) == sorted(set(bits))

    def test_set_bits_bulk_matches_per_bit(self, backend):
        # Bulk accumulation into an existing mask == per-bit set_bit,
        # including cross-chunk runs and bits already present.
        base_bits = (1, 64, 300)
        added = sorted((0, 63, 64, 255, 256, 300, 1024, 1025))
        mask = backend.set_bits_bulk(backend.make(base_bits), added)
        reference = backend.make(base_bits)
        for bit in added:
            reference = backend.set_bit(reference, bit)
        assert backend.equals(mask, reference)
        assert backend.equals(
            backend.set_bits_bulk(backend.empty(), added),
            backend.make(added),
        )
        assert backend.equals(
            backend.set_bits_bulk(backend.make(base_bits), []),
            backend.make(base_bits),
        )

    @given(
        bit_lists=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=1100), max_size=40
            ).map(sorted),
            max_size=6,
        )
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_bulk_ops_match_reference(self, backend, bit_lists):
        built = backend.make_batch(bit_lists)
        for bits, mask in zip(bit_lists, built):
            assert backend.popcount(mask) == len(set(bits))
            assert list(backend.iter_bits(mask)) == sorted(set(bits))
        merged = backend.empty()
        for bits in bit_lists:
            merged = backend.set_bits_bulk(merged, bits)
        union = ref_mask(bit for bits in bit_lists for bit in bits)
        assert list(backend.iter_bits(merged)) == [
            i for i in range(1101) if union >> i & 1
        ]

    @pytest.mark.parametrize(
        "bits_a, bits_b",
        [
            ((0,), (0,)),
            ((0,), (1,)),
            ((63,), (64,)),
            ((255, 256), (256, 257)),
            ((0, 64, 1024), (64,)),
            ((5, 70, 300), (1025,)),
            ((), (0, 63)),
        ],
    )
    def test_binary_ops_match_int_reference(self, backend, bits_a, bits_b):
        a, b = backend.make(bits_a), backend.make(bits_b)
        ra, rb = ref_mask(bits_a), ref_mask(bits_b)
        assert backend.union_overlaps(a, b) == bool(ra & rb)
        assert backend.and_count(a, b) == (ra & rb).bit_count()
        assert list(backend.iter_bits(backend.or_(a, b))) == [
            i for i in range(1100) if (ra | rb) >> i & 1
        ]
        assert list(backend.iter_bits(backend.and_(a, b))) == [
            i for i in range(1100) if (ra & rb) >> i & 1
        ]
        assert list(backend.iter_bits(backend.andnot(a, b))) == [
            i for i in range(1100) if (ra & ~rb) >> i & 1
        ]

    def test_empty_overlap_at_chunk_edges(self, backend):
        # Adjacent bits in different chunks must not report overlap.
        left = backend.make((63, 255, 1023))
        right = backend.make((64, 256, 1024))
        assert not backend.union_overlaps(left, right)
        assert backend.and_count(left, right) == 0
        assert backend.is_empty(backend.and_(left, right))

    def test_ops_are_pure(self, backend):
        a = backend.make((1, 64, 300))
        b = backend.make((64, 500))
        before = list(backend.iter_bits(a)), list(backend.iter_bits(b))
        backend.or_(a, b)
        backend.and_(a, b)
        backend.andnot(a, b)
        backend.union_overlaps(a, b)
        backend.and_count(a, b)
        assert (list(backend.iter_bits(a)), list(backend.iter_bits(b))) == before

    def test_bit_span_matches_int_bit_length(self, backend):
        assert backend.bit_span(backend.empty()) == 0
        for bits in ((0,), (63,), (64,), (255, 256), (5, 70, 1025)):
            mask = backend.make(bits)
            assert backend.bit_span(mask) == ref_mask(bits).bit_length()

    def test_mask_bytes_positive_and_monotone_in_chunks(self, backend):
        sparse = backend.make((3,))
        spread = backend.make((3, 1024, 4096))
        assert backend.mask_bytes(backend.empty()) >= 0
        assert backend.mask_bytes(sparse) > 0
        assert backend.mask_bytes(spread) >= backend.mask_bytes(sparse)

    @given(
        bits_a=st.sets(st.integers(min_value=0, max_value=1100), max_size=60),
        bits_b=st.sets(st.integers(min_value=0, max_value=1100), max_size=60),
    )
    @settings(
        max_examples=60,
        deadline=None,
        # The backend fixture is a stateless strategy object; reusing
        # it across generated examples is exactly the production usage.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_ops_match_reference(self, backend, bits_a, bits_b):
        a, b = backend.make(bits_a), backend.make(bits_b)
        ra, rb = ref_mask(bits_a), ref_mask(bits_b)
        assert backend.popcount(a) == ra.bit_count()
        assert backend.and_count(a, b) == (ra & rb).bit_count()
        assert backend.union_overlaps(a, b) == bool(ra & rb)
        assert backend.popcount(backend.or_(a, b)) == (ra | rb).bit_count()
        assert backend.popcount(backend.andnot(a, b)) == (ra & ~rb).bit_count()
        assert list(backend.iter_bits(a)) == sorted(bits_a)


class TestRegistry:
    def test_names_round_trip(self):
        for name in ("bigint", "chunked", "numpy"):
            assert get_backend(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(MiningError, match="unknown mask backend"):
            get_backend("roaring")

    def test_auto_resolves_by_size(self):
        assert resolve_backend("auto", 100).name == "bigint"
        assert resolve_backend("auto", AUTO_CHUNKED_MIN_BITS).name == "chunked"
        assert resolve_backend("auto", None).name == "bigint"
        assert resolve_backend("numpy", 100).name == "numpy"

    def test_chunk_width_validation(self):
        with pytest.raises(ValueError):
            ChunkedMaskBackend(chunk_bits=100)
        with pytest.raises(ValueError):
            NumpyChunkedMaskBackend(chunk_bits=70)

    def test_bigint_reference_estimate(self):
        # 30 bits per 4-byte digit on top of the 28-byte header.
        assert bigint_mask_bytes(1) == 32
        assert bigint_mask_bytes(30) == 32
        assert bigint_mask_bytes(31) == 36
        assert bigint_mask_bytes(1_600_000) > 200_000


def random_graph(seed, num_vertices=45, num_edges=110):
    graph, _ = planted_astar_graph(
        num_vertices,
        num_edges,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2", "n3"),
        noise_rate=0.25,
        seed=seed,
    )
    return graph


def setup(graph, backend_name):
    return (
        InvertedDatabase.from_graph(graph, mask_backend=get_backend(backend_name)),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


def run_key(db, trace):
    return (
        [t.merged_pair for t in trace.iterations],
        [t.total_dl_bits for t in trace.iterations],
        trace.final_dl_bits,
        trace.initial_candidate_gains,
        trace.total_gain_computations,
        trace.refreshes_skipped,
        trace.dirty_revalidations,
        db.snapshot(),
    )


class TestMiningEquivalence:
    """Identical merge sequences/snapshots/DL floats on every backend."""

    @pytest.mark.parametrize("seed", range(6))
    def test_partial_lazy_bit_exact_across_backends(self, seed):
        graph = random_graph(seed)
        reference = None
        for name in BACKEND_NAMES:
            db, standard, core = setup(graph, name)
            trace = run_partial(db, standard, core)
            db.validate(graph)
            key = run_key(db, trace)
            if reference is None:
                reference = key
            else:
                assert key == reference, f"backend {name} diverged"

    @pytest.mark.parametrize("seed", range(3))
    def test_basic_bit_exact_across_backends(self, seed):
        graph = random_graph(seed)
        reference = None
        for name in BACKEND_NAMES:
            db, standard, core = setup(graph, name)
            trace = run_basic(db, standard, core)
            key = run_key(db, trace)
            if reference is None:
                reference = key
            else:
                assert key == reference, f"backend {name} diverged"

    def test_merge_outcomes_equivalent(self):
        graph = random_graph(11)
        dbs = {name: setup(graph, name)[0] for name in BACKEND_NAMES}
        ref_db = dbs["bigint"]
        for _step in range(5):
            # Re-pick after every merge: earlier merges may have
            # removed a leafset a pre-selected pair relied on.
            ordered = ref_db.interner.order(ref_db.leafsets())
            pair = next(
                (
                    (a, b)
                    for i, a in enumerate(ordered)
                    for b in ordered[i + 1 :]
                    if ref_db.common_coresets(a, b)
                ),
                None,
            )
            if pair is None:
                break
            leaf_x, leaf_y = pair
            outcomes = {
                name: db.merge(leaf_x, leaf_y) for name, db in dbs.items()
            }
            reference = outcomes["bigint"]
            for name, outcome in outcomes.items():
                assert outcome.stats == reference.stats, name
                assert outcome.removed_leafsets == reference.removed_leafsets
                decoded = {
                    leaf: dbs[name]._to_vertices(mask)
                    for leaf, mask in outcome.touched_row_unions.items()
                }
                ref_decoded = {
                    leaf: ref_db._to_vertices(mask)
                    for leaf, mask in reference.touched_row_unions.items()
                }
                assert decoded == ref_decoded, name
        for name, db in dbs.items():
            assert db.snapshot() == ref_db.snapshot(), name


VALUES = ["a", "b", "c", "d", "e"]


@st.composite
def attributed_graphs(draw, max_vertices=10):
    from repro.graphs.attributed_graph import AttributedGraph

    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = AttributedGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
        size = draw(st.integers(min_value=1, max_value=3))
        values = draw(
            st.sets(st.sampled_from(VALUES), min_size=size, max_size=size)
        )
        graph.set_attributes(vertex, values)
    for vertex in range(1, n):
        graph.add_edge(vertex - 1, vertex)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@given(graph=attributed_graphs())
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_property_backends_mine_identically(graph):
    reference = None
    for name in BACKEND_NAMES:
        db, standard, core = setup(graph, name)
        trace = run_partial(db, standard, core)
        key = run_key(db, trace)
        if reference is None:
            reference = key
        else:
            assert key == reference, f"backend {name} diverged"


class TestInitialDescriptionLength:
    """Satellite: the DL pass folded into database construction."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_matches_full_recompute_exactly(self, name):
        graph = random_graph(2)
        db, standard, core = setup(graph, name)
        folded = initial_description_length(db, standard, core)
        recomputed = description_length(db, standard, core)
        # Byte-identical, not approx: the construction-order record is
        # the same term order as the global sort.
        assert folded == recomputed

    def test_row_order_matches_global_sort(self, paper_graph):
        from repro.core.mdl import _sorted_rows

        db = InvertedDatabase.from_graph(paper_graph)
        order = db.initial_row_order()
        assert order is not None
        assert [(core, leaf) for core, leaf, _f in _sorted_rows(db)] == order

    def test_record_dropped_on_merge(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        standard = StandardCodeTable.from_graph(paper_graph)
        core = CoreCodeTable.singletons_from_graph(paper_graph)
        leafsets = db.interner.order(db.leafsets())
        pair = next(
            (a, b)
            for i, a in enumerate(leafsets)
            for b in leafsets[i + 1 :]
            if db.common_coresets(a, b)
        )
        db.merge(*pair)
        assert db.initial_row_order() is None
        # Fallback path still agrees with the reference recompute.
        assert initial_description_length(db, standard, core) == (
            description_length(db, standard, core)
        )

    def test_copy_preserves_record(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        clone = db.copy()
        assert clone.initial_row_order() == db.initial_row_order()


class TestVertexBitTable:
    """Satellite: one precomputed vertex order shared by all masks."""

    def test_precomputed_and_exposed(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        table = db.vertex_bit_table()
        assert db.num_position_bits == len(table)
        assert sorted(table.values()) == list(range(len(table)))
        # Decoding any row goes through the shared order.
        for core, leaf, positions in db.rows():
            mask = db._rows[(core, leaf)]
            assert {
                bit for bit in db.mask_backend.iter_bits(mask)
            } == {table[v] for v in positions}

    def test_vertices_without_leaves_get_no_bit(self):
        from repro.graphs.attributed_graph import AttributedGraph

        graph = AttributedGraph.from_edges(
            edges=[(0, 1)], attributes={0: {"a"}, 1: {"b"}, 2: {"c"}}
        )
        db = InvertedDatabase.from_graph(graph)
        # Vertex 2 is isolated: no neighbour values, no bit.
        assert 2 not in db.vertex_bit_table()

    def test_num_leafsets_matches_list(self, paper_db):
        assert paper_db.num_leafsets == len(paper_db.leafsets())


class TestMemoryAccounting:
    def test_chunked_beats_bigint_estimate_on_sparse_masks(self):
        # A sparse community-structured database at modest width: the
        # chunked representation must undercut the whole-graph bigint
        # estimate (the pokec-sparse acceptance ratio, in miniature).
        from repro.perf.suite import pokec_sparse_graph

        graph = pokec_sparse_graph(200)  # 5000 vertices
        db = InvertedDatabase.from_graph(
            graph, mask_backend=get_backend("chunked")
        )
        assert db.mask_memory_bytes() * 2 < db.bigint_mask_bytes_estimate()

    def test_memory_estimates_positive(self, paper_graph):
        db = InvertedDatabase.from_graph(paper_graph)
        assert db.mask_memory_bytes() > 0
        assert db.bigint_mask_bytes_estimate() > 0

    @pytest.mark.parametrize("name", ("chunked", "numpy"))
    def test_bigint_estimate_is_what_bigint_actually_pays(self, name):
        # The reduction ratio's denominator must be honest: the
        # estimate computed on a chunked database equals the measured
        # mask bytes of the identical database built on bigint masks.
        from repro.perf.suite import pokec_sparse_graph

        graph = pokec_sparse_graph(20)
        sparse = InvertedDatabase.from_graph(
            graph, mask_backend=get_backend(name)
        )
        bigint = InvertedDatabase.from_graph(
            graph, mask_backend=get_backend("bigint")
        )
        assert sparse.bigint_mask_bytes_estimate() == bigint.mask_memory_bytes()
        assert bigint.bigint_mask_bytes_estimate() == bigint.mask_memory_bytes()


class TestConfigIntegration:
    def test_mask_backend_field_validated(self):
        assert CSPMConfig().mask_backend == "auto"
        assert CSPMConfig(mask_backend="chunked").mask_backend == "chunked"
        with pytest.raises(ConfigError, match="mask_backend"):
            CSPMConfig(mask_backend="roaring")
        assert CSPMConfig.__dataclass_fields__.keys() >= {"mask_backend"}
        assert set(MASK_BACKENDS) == {"auto", "bigint", "chunked", "numpy"}

    def test_default_backend_not_serialised(self):
        # Schema-v1 result documents (and the CLI golden file) must not
        # grow a field for an execution-engine default.
        assert "mask_backend" not in CSPMConfig().to_dict()
        assert CSPMConfig.from_dict(CSPMConfig().to_dict()) == CSPMConfig()

    def test_non_default_backend_round_trips(self):
        config = CSPMConfig(mask_backend="numpy")
        document = config.to_dict()
        assert document["mask_backend"] == "numpy"
        assert CSPMConfig.from_dict(document) == config

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_facade_results_identical(self, name, paper_graph):
        from repro import CSPM

        reference = CSPM().fit(paper_graph)
        mined = CSPM(mask_backend=name).fit(paper_graph)
        assert mined.inverted_db.mask_backend.name == name
        # The mined model is identical field-for-field; only the
        # config's backend record may differ.
        assert [star.to_dict() for star in mined.astars] == [
            star.to_dict() for star in reference.astars
        ]
        assert mined.trace.final_dl_bits == reference.trace.final_dl_bits
        assert math.isclose(
            mined.final_dl.total_bits, reference.final_dl.total_bits
        )

    def test_cli_exposes_backend_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.graphs.builders import paper_running_example
        from repro.graphs.io import save_json

        path = tmp_path / "graph.json"
        save_json(paper_running_example(), str(path))
        assert main(["mine", str(path), "--mask-backend", "chunked", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["mask_backend"] == "chunked"


class TestAndnotPurity:
    """MSK002 regression: ``andnot`` on the chunked backend must not
    mutate its operands (the fixed in-place ``word &= ~other`` was
    flagged by the invariant linter; the pure spelling is pinned here)."""

    @pytest.mark.parametrize("chunk_bits", [None, 64])
    def test_chunked_andnot_leaves_operands_intact(self, chunk_bits):
        backend = (
            ChunkedMaskBackend()
            if chunk_bits is None
            else ChunkedMaskBackend(chunk_bits=chunk_bits)
        )
        a_bits = [0, 63, 64, 100, 1025]
        b_bits = [63, 100, 2000]
        a = backend.make(a_bits)
        b = backend.make(b_bits)
        a_before = {chunk: word for chunk, word in a.items()}
        b_before = {chunk: word for chunk, word in b.items()}
        result = backend.andnot(a, b)
        assert a == a_before
        assert b == b_before
        assert list(backend.iter_bits(result)) == [0, 64, 1025]

    def test_chunked_andnot_matches_bigint_reference(self):
        backend = ChunkedMaskBackend(chunk_bits=64)
        reference = BigintMaskBackend()
        a_bits = sorted(BOUNDARY_BITS)
        b_bits = [1, 63, 256, 1024, 4096]
        chunked_result = backend.andnot(
            backend.make(a_bits), backend.make(b_bits)
        )
        reference_result = reference.andnot(
            reference.make(a_bits), reference.make(b_bits)
        )
        assert list(backend.iter_bits(chunked_result)) == list(
            reference.iter_bits(reference_result)
        )
