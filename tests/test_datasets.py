"""Tests for the benchmark dataset analogues."""

import pytest

from repro.datasets import available_datasets, load_dataset
from repro.datasets.synthetic import community_attributed_graph
from repro.errors import DatasetError
from repro.graphs.stats import graph_stats


class TestRegistry:
    def test_names(self):
        assert available_datasets() == [
            "citeseer",
            "cora",
            "dblp",
            "dblp-trend",
            "pokec",
            "usflight",
        ]

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_seeded_determinism(self):
        first = load_dataset("dblp", scale=0.1, seed=4)
        second = load_dataset("dblp", scale=0.1, seed=4)
        assert first == second


class TestCommunityGenerator:
    def test_pools_respected(self):
        graph = community_attributed_graph(
            community_sizes=[20, 20],
            community_pools=[["a", "b"], ["x", "y"]],
            global_values=(),
            seed=0,
        )
        values = graph.attribute_values()
        assert values <= {"a", "b", "x", "y"}
        # Vertices of community 0 never carry community-1 values.
        for vertex in range(20):
            assert graph.attributes_of(vertex) <= {"a", "b"}

    def test_every_vertex_attributed(self):
        graph = community_attributed_graph(
            [15, 15], [["a"], ["b"]], values_per_vertex=(1, 1), seed=1
        )
        assert all(graph.attributes_of(v) for v in graph.vertices())

    def test_mismatched_pools_rejected(self):
        with pytest.raises(DatasetError):
            community_attributed_graph([10], [["a"], ["b"]])


class TestShapes:
    def test_dblp_matches_paper_statistics_shape(self):
        stats = graph_stats(load_dataset("dblp"))
        # Paper: 2,723 nodes, 3,464 edges -> sparse citation graph.
        assert 2000 <= stats.num_vertices <= 3500
        assert stats.avg_degree < 8
        assert 20 <= stats.num_coresets <= 200

    def test_dblp_trend_triples_value_universe(self):
        dblp = graph_stats(load_dataset("dblp"))
        trend = graph_stats(load_dataset("dblp-trend"))
        assert trend.num_values > 2 * dblp.num_values
        assert trend.num_vertices == dblp.num_vertices

    def test_usflight_is_small_and_dense(self):
        stats = graph_stats(load_dataset("usflight"))
        assert stats.num_vertices == 280
        assert stats.avg_degree > 10
        assert stats.num_values <= 8

    def test_pokec_default_is_laptop_scale(self):
        stats = graph_stats(load_dataset("pokec"))
        assert 1000 <= stats.num_vertices <= 2500
        assert stats.avg_degree > 8  # dense social graph

    def test_cora_like_vocabulary_breadth(self):
        stats = graph_stats(load_dataset("cora", scale=0.2))
        assert stats.num_values > 150  # hard completion task

    def test_scaling_shrinks(self):
        full = load_dataset("dblp")
        small = load_dataset("dblp", scale=0.25)
        assert small.num_vertices < full.num_vertices / 2

    def test_usflight_plants_departure_coupling(self):
        graph = load_dataset("usflight", seed=0)
        # The planted correlation behind the Section VI-B(2) example:
        # many NbDepart- airports border NbDepart+ ones.
        losing = [
            v
            for v in graph.vertices()
            if "NbDepart-" in graph.attributes_of(v)
        ]
        assert losing
        coupled = sum(
            1 for v in losing if "NbDepart+" in graph.neighbor_values(v)
        )
        assert coupled / len(losing) > 0.5

    def test_pokec_taste_communities_separate(self):
        graph = load_dataset("pokec", seed=0)
        young = {"rap", "rock", "metal", "pop", "sladaky", "hiphop", "punk"}
        older = {"disko", "oldies", "folk", "country", "dychovka"}
        mixed = sum(
            1
            for v in graph.vertices()
            if graph.attributes_of(v) & young and graph.attributes_of(v) & older
        )
        assert mixed == 0  # pools do not mix within a profile
