"""Shared fixtures.

Heavier artefacts (mined results on reference graphs) are session-
scoped: they are deterministic, read-only in tests, and expensive
enough that rebuilding them per test would dominate the suite runtime.
"""

from __future__ import annotations

import pytest

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.inverted_db import InvertedDatabase
from repro.core.miner import CSPM
from repro.graphs.builders import paper_running_example
from repro.graphs.generators import PlantedAStar, planted_astar_graph


@pytest.fixture()
def paper_graph():
    """The Fig. 1 running example (fresh per test: it is tiny)."""
    return paper_running_example()


@pytest.fixture()
def paper_db(paper_graph):
    return InvertedDatabase.from_graph(paper_graph)


@pytest.fixture()
def paper_tables(paper_graph):
    return (
        StandardCodeTable.from_graph(paper_graph),
        CoreCodeTable.singletons_from_graph(paper_graph),
    )


@pytest.fixture(scope="session")
def planted():
    """A planted graph with known correlations plus its ground truth."""
    graph, truth = planted_astar_graph(
        num_vertices=80,
        num_edges=200,
        patterns=[
            PlantedAStar("core-a", ("leaf-a1", "leaf-a2"), strength=0.95),
            PlantedAStar("core-b", ("leaf-b1", "leaf-b2", "leaf-b3"), strength=0.9),
        ],
        noise_values=("noise-1", "noise-2"),
        noise_rate=0.15,
        seed=42,
    )
    return graph, truth


@pytest.fixture(scope="session")
def planted_result(planted):
    graph, _truth = planted
    return CSPM().fit(graph)
