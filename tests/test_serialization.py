"""Round-trip tests for the serialisable result surface."""

import json

import pytest

from repro import CSPM, CSPMConfig, CSPMResult
from repro.core.astar import AStar
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.instrumentation import RunTrace
from repro.core.mdl import DescriptionLength
from repro.graphs.builders import paper_running_example


class TestAStarRoundTrip:
    def test_round_trip_equality(self):
        star = AStar(
            coreset=frozenset({"a"}),
            leafset=frozenset({"b", "c"}),
            frequency=3,
            coreset_frequency=5,
            code_length=1.25,
        )
        back = AStar.from_dict(star.to_dict())
        assert back == star
        assert back.code_length == star.code_length  # compare=False field

    def test_dict_is_json_ready(self):
        star = AStar(coreset={"a"}, leafset={"b"}, frequency=1)
        assert AStar.from_dict(json.loads(json.dumps(star.to_dict()))) == star

    def test_sets_serialised_sorted(self):
        star = AStar(coreset={"b", "a"}, leafset={"z", "y"})
        document = star.to_dict()
        assert document["coreset"] == ["a", "b"]
        assert document["leafset"] == ["y", "z"]


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def mined(self):
        return CSPM(config=CSPMConfig(method="partial")).fit(
            paper_running_example()
        )

    def test_ranking_preserved(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.astars == mined.astars
        assert [s.code_length for s in back.astars] == [
            s.code_length for s in mined.astars
        ]

    def test_dl_accounting_preserved(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.initial_dl == mined.initial_dl
        assert back.final_dl == mined.final_dl
        assert back.compression_ratio == mined.compression_ratio

    def test_trace_preserved(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.trace.algorithm == mined.trace.algorithm
        assert back.trace.num_iterations == mined.trace.num_iterations
        assert (
            back.trace.total_gain_computations
            == mined.trace.total_gain_computations
        )
        assert back.trace.update_ratios() == mined.trace.update_ratios()

    def test_code_tables_preserved_bit_exactly(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.standard_table.lengths() == mined.standard_table.lengths()
        assert (
            back.standard_table.total_occurrences
            == mined.standard_table.total_occurrences
        )
        for coreset in mined.core_table.coresets():
            assert back.core_table.code_length(
                coreset
            ) == mined.core_table.code_length(coreset)

    def test_config_preserved(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.config == mined.config

    def test_inverted_db_not_serialised(self, mined):
        document = mined.to_dict()
        assert "inverted_db" not in document
        assert CSPMResult.from_dict(document).inverted_db is None

    def test_json_round_trip(self, mined):
        back = CSPMResult.from_json(mined.to_json())
        assert back.astars == mined.astars

    def test_restored_result_still_filters_and_summarises(self, mined):
        back = CSPMResult.from_dict(mined.to_dict())
        assert back.summary() == mined.summary()
        assert back.filter(min_leafset_size=2) == mined.filter(
            min_leafset_size=2
        )
        assert back.top(2) == mined.top(2)


class TestComponentRoundTrips:
    def test_description_length(self):
        breakdown = DescriptionLength(1.0, 2.5, 3.25, 0.75)
        assert DescriptionLength.from_dict(breakdown.to_dict()) == breakdown

    def test_run_trace_merged_pairs(self):
        mined = CSPM().fit(paper_running_example())
        back = RunTrace.from_dict(
            json.loads(json.dumps(mined.trace.to_dict()))
        )
        assert back.iterations == mined.trace.iterations

    def test_standard_table(self):
        table = StandardCodeTable({"a": 3, "b": 1})
        back = StandardCodeTable.from_dict(
            json.loads(json.dumps(table.to_dict()))
        )
        assert back.lengths() == table.lengths()

    def test_core_table(self):
        table = CoreCodeTable({frozenset({"a", "b"}): 2, frozenset({"c"}): 1})
        back = CoreCodeTable.from_dict(json.loads(json.dumps(table.to_dict())))
        for coreset in table.coresets():
            assert back.code_length(coreset) == table.code_length(coreset)


class TestFilterSemantics:
    """Satellite: core_value accepts a single value or a set of values."""

    @pytest.fixture(scope="class")
    def result(self):
        """A result with both singleton and multi-value coresets."""
        stars = [
            AStar({"a"}, {"x"}, frequency=4, code_length=1.0),
            AStar({"a", "b"}, {"x", "y"}, frequency=3, code_length=2.0),
            AStar({"b"}, {"y"}, frequency=2, code_length=3.0),
            AStar({"a", "b", "c"}, {"z"}, frequency=1, code_length=4.0),
        ]
        mined = CSPM().fit(paper_running_example())
        return CSPMResult(
            astars=stars,
            trace=mined.trace,
            initial_dl=mined.initial_dl,
            final_dl=mined.final_dl,
            standard_table=mined.standard_table,
            core_table=mined.core_table,
        )

    def test_single_value_is_membership(self, result):
        stars = result.filter(core_value="a")
        assert [set(s.coreset) for s in stars] == [
            {"a"},
            {"a", "b"},
            {"a", "b", "c"},
        ]

    def test_set_is_subset_match(self, result):
        stars = result.filter(core_value={"a", "b"})
        assert [set(s.coreset) for s in stars] == [
            {"a", "b"},
            {"a", "b", "c"},
        ]

    def test_frozenset_is_subset_match(self, result):
        assert result.filter(core_value=frozenset({"b", "c"})) == [
            result.astars[3]
        ]

    def test_list_treated_as_collection(self, result):
        stars = result.filter(core_value=["a", "b"])
        assert stars == result.filter(core_value={"a", "b"})

    def test_empty_set_matches_everything(self, result):
        assert result.filter(core_value=set()) == result.astars

    def test_rank_order_preserved(self, result):
        stars = result.filter(core_value="b")
        assert stars == [s for s in result.astars if "b" in s.coreset]

    def test_mined_results_support_membership(self):
        mined = CSPM().fit(paper_running_example())
        for star in mined.filter(core_value="a"):
            assert "a" in star.coreset
