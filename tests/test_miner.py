"""Tests for the CSPM facade and its result object."""

import pytest

from repro.core.astar import AStar
from repro.core.miner import CSPM
from repro.errors import MiningError
from repro.graphs.attributed_graph import AttributedGraph


class TestConfiguration:
    def test_invalid_method_rejected(self):
        with pytest.raises(MiningError):
            CSPM(method="alien")

    def test_invalid_encoder_rejected(self):
        with pytest.raises(MiningError):
            CSPM(coreset_encoder="alien")

    def test_empty_graph_rejected(self):
        with pytest.raises(MiningError):
            CSPM().fit(AttributedGraph())

    def test_unattributed_graph_rejected(self):
        graph = AttributedGraph.from_edges([(1, 2)])
        with pytest.raises(MiningError):
            CSPM().fit(graph)


class TestResult:
    def test_astars_sorted_by_code_length(self, planted_result):
        lengths = [star.code_length for star in planted_result.astars]
        assert lengths == sorted(lengths)

    def test_compression_achieved(self, planted_result):
        assert planted_result.compression_ratio < 1.0
        assert planted_result.final_dl.total_bits < planted_result.initial_dl.total_bits

    def test_top_k(self, planted_result):
        top = planted_result.top(3)
        assert len(top) == 3
        assert top == planted_result.astars[:3]

    def test_filter_by_leafset_size(self, planted_result):
        filtered = planted_result.filter(min_leafset_size=2)
        assert all(len(star.leafset) >= 2 for star in filtered)

    def test_filter_by_core_value(self, planted_result):
        filtered = planted_result.filter(core_value="core-a")
        assert filtered
        assert all("core-a" in star.coreset for star in filtered)

    def test_filter_by_frequency(self, planted_result):
        filtered = planted_result.filter(min_frequency=3)
        assert all(star.frequency >= 3 for star in filtered)

    def test_iteration_and_len(self, planted_result):
        assert len(list(planted_result)) == len(planted_result)

    def test_summary_mentions_algorithm(self, planted_result):
        assert "cspm-partial" in planted_result.summary()

    def test_astars_frequencies_consistent(self, planted_result):
        for star in planted_result.astars:
            assert 0 < star.frequency <= star.coreset_frequency
            assert star.code_length > 0 or star.frequency == star.coreset_frequency


class TestRecovery:
    def test_planted_patterns_recovered(self, planted, planted_result):
        """The planted correlations surface as merged leafsets."""
        _graph, truth = planted
        for pattern in truth.patterns:
            stars = planted_result.filter(core_value=pattern.core_value)
            assert stars, f"no a-star with core {pattern.core_value}"
            covered = set()
            for star in stars:
                covered |= set(star.leafset)
            assert set(pattern.leaf_values) <= covered

    def test_merged_leafsets_exist(self, planted_result):
        assert planted_result.filter(min_leafset_size=2)


class TestBasicVsPartialFacade:
    def test_same_model_both_methods(self, planted):
        graph, _ = planted
        result_basic = CSPM(method="basic").fit(graph)
        result_partial = CSPM(method="partial").fit(graph)
        assert result_basic.final_dl.total_bits == pytest.approx(
            result_partial.final_dl.total_bits, abs=1e-6
        )
        assert [s.sort_key() for s in result_basic.astars] == [
            s.sort_key() for s in result_partial.astars
        ]

    def test_related_scope_runs(self, planted):
        graph, _ = planted
        result = CSPM(method="partial", partial_update_scope="related").fit(graph)
        assert result.astars
        result.inverted_db.validate(graph)


class TestAStarSemantics:
    def test_matches_at(self, paper_graph):
        star = AStar(coreset={"a"}, leafset={"b", "c"})
        assert star.matches_at(paper_graph, 1)
        assert not star.matches_at(paper_graph, 4)

    def test_occurrences(self, paper_graph):
        star = AStar(coreset={"a"}, leafset={"b", "c"})
        assert star.occurrences(paper_graph) == frozenset({1, 5})

    def test_mined_astar_occurs_in_graph(self, planted, planted_result):
        graph, _ = planted
        for star in planted_result.top(10):
            # Every cover position is a genuine occurrence, so the
            # pattern's usage never exceeds its occurrence count.
            assert star.frequency <= len(star.occurrences(graph))

    def test_confidence(self):
        star = AStar(coreset={"a"}, leafset={"b"}, frequency=2, coreset_frequency=4)
        assert star.confidence == 0.5

    def test_str_contains_sets(self):
        star = AStar(coreset={"a"}, leafset={"b"}, frequency=1, coreset_frequency=2)
        text = str(star)
        assert "{a}" in text and "{b}" in text
