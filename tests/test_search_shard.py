"""The component-sharded search must be bit-exact with the serial run.

``run_sharded`` mines the connected components of the coreset-overlap
graph in worker processes and replays the recorded runs through one
global queue (:mod:`repro.core.search_shard`).  The contract is total:
the stitched :class:`RunTrace` — merge sequence, every DL float, every
instrumentation counter — and the mutated database must equal the
serial :func:`run_partial` outcome exactly (``==``, not approx), on
every update scope, worker count and mask backend.  The golden-file
test in tests/test_cli_json.py additionally pins that the serial
default's CLI output is byte-identical (the ``search`` knobs are
omitted from ``to_dict`` at their defaults).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SEARCHES, CSPMConfig
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_partial import run_partial
from repro.core.inverted_db import InvertedDatabase
from repro.core.masks import get_backend
from repro.core.search_shard import connected_components, run_sharded
from repro.errors import ConfigError, MiningError
from repro.graphs.attributed_graph import AttributedGraph
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def setup(graph, mask_backend=None):
    backend = get_backend(mask_backend) if mask_backend else None
    return (
        InvertedDatabase.from_graph(graph, mask_backend=backend),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


def single_component_graph(seed):
    graph, _ = planted_astar_graph(
        50,
        120,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2"),
        noise_rate=0.2,
        seed=seed,
    )
    return graph


def multi_component_graph(seed, parts=3):
    """A disjoint union of planted graphs with disjoint value pools.

    Parts share no values, hence no coresets, hence the coreset-overlap
    graph splits into (at least) ``parts`` components — the structure
    the sharded search exists to exploit.
    """
    graph = AttributedGraph()
    for part in range(parts):
        sub, _ = planted_astar_graph(
            40,
            90,
            [
                PlantedAStar(
                    f"p{part}", (f"q{part}", f"r{part}"), strength=0.9
                )
            ],
            noise_values=(f"n{part}a", f"n{part}b"),
            noise_rate=0.25,
            seed=seed * 7 + part,
        )
        offset = part * 10_000
        for vertex in sub.vertices():
            graph.add_vertex(vertex + offset)
            graph.set_attributes(vertex + offset, sub.attributes_of(vertex))
        for left, right in sub.edges():
            graph.add_edge(left + offset, right + offset)
    return graph


def assert_bit_exact(graph, update_scope="lazy", workers=1, mask_backend=None):
    """Serial and sharded runs on ``graph`` must be indistinguishable."""
    db_serial, standard, core = setup(graph, mask_backend)
    trace_serial = run_partial(
        db_serial, standard, core, update_scope=update_scope
    )
    db_sharded, _, _ = setup(graph, mask_backend)
    sharded = run_sharded(
        db_sharded, standard, core, update_scope=update_scope, workers=workers
    )
    assert sharded.trace.to_dict() == trace_serial.to_dict()
    assert db_sharded.snapshot() == db_serial.snapshot()
    # Merged leafsets must have been interned in the serial order.
    assert [
        db_sharded.interner.leafset_of(i)
        for i in range(len(db_sharded.interner))
    ] == [
        db_serial.interner.leafset_of(i)
        for i in range(len(db_serial.interner))
    ]
    return sharded


class TestComponents:
    def test_multi_part_graph_splits(self):
        db, _, _ = setup(multi_component_graph(1, parts=3))
        components = connected_components(db)
        assert len(components) >= 3
        assert sorted(i for c in components for i in c) == list(
            range(len(db.interner))
        )

    def test_components_partition_coresets(self):
        db, _, _ = setup(multi_component_graph(2))
        owner = {}
        for index, component in enumerate(connected_components(db)):
            for leaf_id in component:
                owner[leaf_id] = index
        for ids in db.coreset_leaf_ids().values():
            assert len({owner[i] for i in ids}) == 1

    def test_single_component_when_values_shared(self, paper_graph):
        db, _, _ = setup(paper_graph)
        components = connected_components(db)
        assert all(len(c) >= 1 for c in components)
        # Components are listed by ascending smallest id.
        firsts = [c[0] for c in components]
        assert firsts == sorted(firsts)


class TestBitExact:
    @pytest.mark.parametrize("scope", ["lazy", "exhaustive", "related"])
    @pytest.mark.parametrize("seed", range(4))
    def test_multi_component_in_process(self, seed, scope):
        assert_bit_exact(multi_component_graph(seed), update_scope=scope)

    @pytest.mark.parametrize("seed", range(3))
    def test_single_component_degenerate(self, seed):
        # One component: the sharded path runs in-process and must
        # still reproduce the serial trace through the replay.
        sharded = assert_bit_exact(single_component_graph(seed))
        assert sharded.num_components >= 1

    @pytest.mark.parametrize("workers", [2, 3])
    def test_real_worker_pools(self, workers):
        # Fork-pool path: results cross a process boundary.
        sharded = assert_bit_exact(multi_component_graph(3), workers=workers)
        assert sharded.num_components >= 3

    @pytest.mark.parametrize("backend", ["bigint", "chunked", "numpy"])
    def test_mask_backends(self, backend):
        assert_bit_exact(multi_component_graph(4), mask_backend=backend)

    def test_component_stats(self):
        sharded = assert_bit_exact(multi_component_graph(5, parts=4))
        assert sharded.num_components >= 4
        assert 0.0 < sharded.largest_component_frac <= 1.0

    def test_no_merges_edge_case(self):
        # Every vertex carries a unique value: no positive-gain pair
        # exists and no coreset is shared, so every leafset is its own
        # component and the stitched trace has zero iterations.
        graph = AttributedGraph()
        for vertex in range(8):
            graph.add_vertex(vertex)
            graph.set_attributes(vertex, {f"v{vertex}"})
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(4, 5)
        graph.add_edge(6, 7)
        sharded = assert_bit_exact(graph)
        assert sharded.trace.num_iterations == 0
        assert sharded.num_components == len(connected_components(
            setup(graph)[0]
        ))

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        parts=st.integers(min_value=1, max_value=3),
        scope=st.sampled_from(["lazy", "exhaustive", "related"]),
    )
    def test_randomized_equivalence(self, seed, parts, scope):
        assert_bit_exact(
            multi_component_graph(seed, parts=parts), update_scope=scope
        )


class TestPipelineAndConfig:
    def test_config_rejects_unknown_search(self):
        with pytest.raises(ConfigError, match="search"):
            CSPMConfig(search="threaded")

    @pytest.mark.parametrize("workers", [0, -1, 1.5, True])
    def test_config_rejects_bad_workers(self, workers):
        with pytest.raises(ConfigError, match="search_workers"):
            CSPMConfig(search_workers=workers)

    def test_to_dict_omits_defaults(self):
        document = CSPMConfig().to_dict()
        assert "search" not in document
        assert "search_workers" not in document
        explicit = CSPMConfig(search="sharded", search_workers=2).to_dict()
        assert explicit["search"] == "sharded"
        assert explicit["search_workers"] == 2
        assert CSPMConfig.from_dict(explicit).search == "sharded"

    def test_run_sharded_validates_arguments(self, paper_graph):
        db, standard, core = setup(paper_graph)
        with pytest.raises(MiningError, match="update_scope"):
            run_sharded(db, standard, core, update_scope="bogus")
        db, _, _ = setup(paper_graph)
        with pytest.raises(MiningError, match="pair_source"):
            run_sharded(db, standard, core, pair_source="bogus")
        db, _, _ = setup(paper_graph)
        with pytest.raises(MiningError, match="search_workers"):
            run_sharded(db, standard, core, workers=0)

    def test_facade_exposes_search_knobs(self):
        from repro.core.miner import CSPM

        miner = CSPM(search="sharded", search_workers=3)
        assert miner.search == "sharded"
        assert miner.search_workers == 3
        assert "sharded" in SEARCHES

    def test_fit_results_identical(self):
        from repro.core.miner import CSPM

        graph = multi_component_graph(6)
        serial = CSPM(partial_update_scope="lazy").fit(graph)
        sharded = CSPM(
            partial_update_scope="lazy", search="sharded", search_workers=2
        ).fit(graph)
        assert sharded.astars == serial.astars
        assert sharded.final_dl == serial.final_dl
        assert sharded.trace.to_dict() == serial.trace.to_dict()
        left = json.loads(serial.to_json())
        right = json.loads(sharded.to_json())
        # Everything but the recorded search knobs and the supervised-
        # runtime telemetry (absent on serial runs) is identical.
        assert right["config"].pop("search") == "sharded"
        assert right["config"].pop("search_workers") == 2
        runtime = right.pop("runtime")
        assert "runtime" not in left
        assert runtime["search"]["retries"] == 0
        assert runtime["search"]["degraded_tasks"] == []
        assert runtime["fault_plan"] is None
        assert left == right

    def test_max_iterations_falls_back_to_serial(self):
        from repro.core.miner import CSPM

        graph = multi_component_graph(7)
        capped_serial = CSPM(max_iterations=2).fit(graph)
        capped_sharded = CSPM(max_iterations=2, search="sharded").fit(graph)
        assert capped_sharded.astars == capped_serial.astars
        assert capped_sharded.trace.num_iterations == 2

    def test_pipeline_records_component_extras(self):
        from repro.pipeline import (
            BuildInvertedDB,
            EncodeCoresets,
            PipelineContext,
            Search,
        )

        context = PipelineContext(
            graph=multi_component_graph(8),
            config=CSPMConfig(search="sharded"),
        )
        EncodeCoresets().run(context)
        BuildInvertedDB().run(context)
        Search().run(context)
        assert context.extras["num_components"] >= 3
        assert 0.0 < context.extras["largest_component_frac"] <= 1.0
        assert context.extras["search_seconds"] >= 0.0
