"""The observability layer (``repro.obs``) and its zero-cost contract.

Two families of guarantees are pinned here:

* the recorders themselves — span nesting/adoption/alignment on an
  injected clock, the metrics registry's deterministic snapshot, the
  throttled progress emitter, and the activation-stack session — all
  driven by fake clocks so nothing depends on real time;
* the *non-interference* contract: with observability off nothing is
  recorded and ``mine --json`` stays byte-identical to the golden
  file, and with tracing on the merge sequence and every DL float are
  ``==`` to the untraced run — serially and at all three supervised
  pool sites under crash fault plans.
"""

import json

import pytest

from repro.batch import fit_many
from repro.cli import main as cli_main
from repro.config import CSPMConfig
from repro.core.instrumentation import RunTrace
from repro.core.miner import CSPM
from repro.graphs.attributed_graph import AttributedGraph
from repro.graphs.builders import paper_running_example
from repro.graphs.generators import PlantedAStar, planted_astar_graph
from repro.graphs.io import save_json
from repro.obs import (
    NULL_METRICS,
    NULL_OBS,
    NULL_PROGRESS,
    NULL_TRACER,
    MetricsRegistry,
    Observation,
    ProgressEmitter,
    SpanTracer,
    activate,
    current,
    emit_run_trace,
)
from repro.pipeline import MiningPipeline
from repro.runtime import FaultEvent, FaultPlan


class FakeClock:
    """A scriptable clock: every call advances by ``step`` seconds."""

    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        stamp = self.now
        self.now += self.step
        return stamp

    def advance(self, seconds):
        self.now += seconds


def crash_plan(site, times=1):
    return FaultPlan(
        events=(FaultEvent(site=site, index=0, kind="crash", times=times),)
    )


def planted(seed=7):
    graph, _ = planted_astar_graph(
        60,
        140,
        [
            PlantedAStar("core-a", ("l1", "l2"), strength=0.9),
            PlantedAStar("core-b", ("m1", "m2"), strength=0.85),
        ],
        noise_values=("n1", "n2"),
        noise_rate=0.2,
        seed=seed,
    )
    return graph


def run_signature(result):
    """The bit-exactness currency: merge sequence + every DL float."""
    return (
        [trace.merged_pair for trace in result.trace.iterations],
        [trace.total_dl_bits for trace in result.trace.iterations],
        result.trace.final_dl_bits,
        result.final_dl.total_bits,
        result.astars,
    )


# ----------------------------------------------------------------------
# SpanTracer
# ----------------------------------------------------------------------


class TestSpanTracer:
    def test_nesting_depth_and_close_order(self):
        tracer = SpanTracer(clock_fn=FakeClock())
        with tracer.span("outer", stage=1):
            with tracer.span("inner"):
                pass
        # Spans buffer at close time: inner first, depth below outer's.
        assert [record[0] for record in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner[3] == 1 and outer[3] == 0
        assert outer[1] < inner[1] < inner[2] < outer[2]
        assert json.loads(outer[4]) == {"stage": 1}

    def test_span_closes_when_body_raises(self):
        tracer = SpanTracer(clock_fn=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert [record[0] for record in tracer.spans] == ["doomed"]

    def test_instant_records_at_current_depth(self):
        tracer = SpanTracer(clock_fn=FakeClock())
        with tracer.span("round"):
            tracer.instant("retry", site="search")
        name, _ts, depth, attrs = tracer.events[0]
        assert name == "retry" and depth == 1
        assert json.loads(attrs) == {"site": "search"}

    def test_adopt_aligns_worker_clock_preserving_durations(self):
        parent = SpanTracer(clock_fn=FakeClock(start=1000.0))
        worker = SpanTracer(clock_fn=FakeClock(start=5.0))
        with worker.span("work"):
            pass
        shipped = worker.export_spans()
        parent.adopt(shipped, pid=4242, lane="search[0]", align_end=1010.0)
        (pid, lane, spans) = parent.adopted[0]
        assert (pid, lane) == (4242, "search[0]")
        name, start, end, _depth, _attrs = spans[0]
        assert name == "work"
        # Latest worker end maps onto the harvest stamp; the span's
        # relative duration is untouched.
        assert end == 1010.0
        assert end - start == shipped[0][2] - shipped[0][1]

    def test_adopt_without_alignment_keeps_stamps(self):
        parent = SpanTracer(clock_fn=FakeClock())
        parent.adopt(
            [("work", 3.0, 4.0, 0, "")], pid=parent.pid, lane="inproc",
            align_end=None,
        )
        assert parent.adopted[0][2] == [("work", 3.0, 4.0, 0, "")]

    def test_adopt_empty_buffer_is_a_noop(self):
        parent = SpanTracer(clock_fn=FakeClock())
        parent.adopt(None, pid=1, lane="x")
        parent.adopt([], pid=1, lane="x")
        assert parent.adopted == []

    def test_chrome_trace_lanes_and_events(self):
        tracer = SpanTracer(clock_fn=FakeClock())
        with tracer.span("mine.search"):
            tracer.instant("supervisor.retry")
        tracer.adopt(
            [("search.component", 0.0, 1.0, 0, "")], pid=777, lane="search[0]",
            align_end=tracer.now(),
        )
        document = tracer.chrome_trace()
        events = document["traceEvents"]
        metadata = [event for event in events if event["ph"] == "M"]
        names = [event["args"]["name"] for event in metadata]
        assert names == [f"main (pid {tracer.pid})", "search[0] (pid 777)"]
        complete = {
            event["name"]: event for event in events if event["ph"] == "X"
        }
        assert complete["mine.search"]["tid"] == 0
        assert complete["search.component"]["tid"] == 1
        assert complete["search.component"]["args"]["pid"] == 777
        instants = [event for event in events if event["ph"] == "i"]
        assert [event["name"] for event in instants] == ["supervisor.retry"]
        # Timestamps are micro-seconds relative to the earliest stamp.
        assert all(event["ts"] >= 0 for event in events if "ts" in event)

    def test_ndjson_lines_are_start_ordered_json(self):
        tracer = SpanTracer(clock_fn=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        rows = [json.loads(line) for line in tracer.ndjson_lines()]
        assert [row["name"] for row in rows] == ["outer", "inner"]
        assert all(row["lane"] == "main" for row in rows)

    def test_write_formats_by_extension(self, tmp_path):
        tracer = SpanTracer(clock_fn=FakeClock())
        with tracer.span("mine.search"):
            pass
        chrome = tmp_path / "trace.json"
        ndjson = tmp_path / "trace.ndjson"
        tracer.write(str(chrome))
        tracer.write(str(ndjson))
        assert "traceEvents" in json.loads(chrome.read_text())
        lines = ndjson.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["mine.search"]

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("mine.search", anything=1):
            NULL_TRACER.instant("supervisor.retry")
        NULL_TRACER.adopt([("x", 0.0, 1.0, 0, "")], pid=1, lane="l")
        assert NULL_TRACER.spans == [] and NULL_TRACER.events == []
        assert NULL_TRACER.adopted == [] and NULL_TRACER.export_spans() == []
        assert not NULL_TRACER.enabled


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_with_labels(self):
        metrics = MetricsRegistry()
        metrics.counter("runtime.retries").inc(site="search")
        metrics.counter("runtime.retries").inc(2, site="search")
        metrics.counter("runtime.retries").inc(site="batch")
        metrics.gauge("search.peak_queue_size").set_max(10)
        metrics.gauge("search.peak_queue_size").set_max(4)
        metrics.gauge("build.mask_memory_bytes").set(512)
        for value in (1.0, 3.0, 2.0):
            metrics.histogram("batch.run_seconds").observe(value)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {
            "runtime.retries{site=batch}": 1,
            "runtime.retries{site=search}": 3,
        }
        assert snapshot["gauges"] == {
            "build.mask_memory_bytes": 512,
            "search.peak_queue_size": 10,
        }
        assert snapshot["histograms"]["batch.run_seconds"] == {
            "count": 3,
            "total": 6.0,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
        }

    def test_snapshot_is_deterministically_ordered(self):
        metrics = MetricsRegistry()
        metrics.counter("zeta").inc()
        metrics.counter("alpha").inc()
        metrics.counter("alpha").inc(b=1)
        metrics.counter("alpha").inc(a=1)
        assert list(metrics.snapshot()["counters"]) == [
            "alpha",
            "alpha{a=1}",
            "alpha{b=1}",
            "zeta",
        ]
        # Label keys inside one series key are sorted too.
        metrics.counter("multi").inc(site="x", phase="y")
        assert "multi{phase=y,site=x}" in metrics.snapshot()["counters"]

    def test_null_metrics_shared_noop_instruments(self):
        instrument = NULL_METRICS.counter("anything")
        assert instrument is NULL_METRICS.gauge("other")
        instrument.inc()
        instrument.set(3)
        instrument.set_max(3)
        instrument.observe(3)
        assert NULL_METRICS.snapshot() == {}
        assert not NULL_METRICS.enabled

    def test_emit_run_trace_re_emits_perf_counters(self):
        trace = RunTrace(algorithm="partial")
        trace.initial_candidate_gains = 5
        trace.refreshes_skipped = 2
        trace.dirty_revalidations = 1
        trace.peak_queue_size = 9
        metrics = MetricsRegistry()
        emit_run_trace(metrics, trace)
        counters = metrics.snapshot()["counters"]
        assert counters["search.gains_computed"] == 5
        assert counters["search.initial_candidate_gains"] == 5
        assert counters["search.refreshes_skipped"] == 2
        assert counters["search.dirty_revalidations"] == 1
        gauges = metrics.snapshot()["gauges"]
        assert gauges["search.peak_queue_size"] == 9
        assert gauges["search.merges"] == 0

    def test_emit_run_trace_skips_disabled_or_missing(self):
        emit_run_trace(NULL_METRICS, RunTrace(algorithm="partial"))
        metrics = MetricsRegistry()
        emit_run_trace(metrics, None)
        assert metrics.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# ProgressEmitter
# ----------------------------------------------------------------------


class FakeStream:
    def __init__(self):
        self.lines = []

    def write(self, text):
        self.lines.append(text)

    def flush(self):
        pass


class TestProgress:
    def test_heartbeat_throttles_per_phase(self):
        clock = FakeClock(start=0.0, step=0.0)
        stream = FakeStream()
        emitter = ProgressEmitter(
            stream=stream, min_interval=0.5, clock_fn=clock
        )
        emitter.heartbeat("search", merges=1)
        emitter.heartbeat("search", merges=2)  # within the interval
        emitter.heartbeat("build", rows=7)  # other phase: independent
        clock.advance(0.6)
        emitter.heartbeat("search", merges=3)
        assert stream.lines == [
            "[repro] search: merges=1\n",
            "[repro] build: rows=7\n",
            "[repro] search: merges=3\n",
        ]

    def test_note_bypasses_throttle(self):
        stream = FakeStream()
        emitter = ProgressEmitter(
            stream=stream, clock_fn=FakeClock(step=0.0)
        )
        emitter.note("runtime", site="search", degraded=1)
        emitter.note("runtime", site="search", degraded=2)
        assert stream.lines == [
            "[repro] runtime: site=search degraded=1\n",
            "[repro] runtime: site=search degraded=2\n",
        ]

    def test_null_progress_is_silent(self):
        NULL_PROGRESS.heartbeat("search", merges=1)
        NULL_PROGRESS.note("search")
        assert not NULL_PROGRESS.enabled


# ----------------------------------------------------------------------
# Observation session + activation stack
# ----------------------------------------------------------------------


class TestSession:
    def test_default_is_null(self):
        assert current() is NULL_OBS
        assert not NULL_OBS.enabled
        with NULL_OBS.span("mine.search"):
            NULL_OBS.instant("supervisor.retry")

    def test_activation_stack_nests_and_restores(self):
        outer = Observation.create(metrics=True)
        inner = Observation.create(trace=True)
        with activate(outer):
            assert current() is outer
            with activate(inner):
                assert current() is inner
            assert current() is outer
        assert current() is NULL_OBS

    def test_stack_pops_on_exception(self):
        obs = Observation.create(trace=True)
        with pytest.raises(RuntimeError):
            with activate(obs):
                raise RuntimeError("boom")
        assert current() is NULL_OBS

    def test_create_all_off_returns_the_null_singleton(self):
        assert Observation.create() is NULL_OBS

    def test_create_selects_components(self):
        obs = Observation.create(trace=True, metrics=True)
        assert obs.tracer.enabled and obs.metrics.enabled
        assert not obs.progress.enabled
        assert obs.enabled
        assert repr(obs) == "Observation(trace+metrics)"

    def test_from_config_duck_typed(self):
        assert Observation.from_config(object()) is NULL_OBS
        obs = Observation.from_config(CSPMConfig(progress=True))
        assert obs.progress.enabled and not obs.tracer.enabled

    def test_for_worker_is_span_capture_only(self):
        assert Observation.for_worker(trace=False) is NULL_OBS
        obs = Observation.for_worker(trace=True)
        assert obs.tracer.enabled
        assert not obs.metrics.enabled and not obs.progress.enabled


# ----------------------------------------------------------------------
# Pipeline spans end to end
# ----------------------------------------------------------------------


STAGE_SPANS = ["mine.encode", "mine.build", "mine.search", "mine.rank"]


class TestPipelineSpans:
    def test_serial_run_records_the_stage_taxonomy(self):
        config = CSPMConfig(trace=True, metrics=True)
        context = MiningPipeline.default(config).run_context(
            paper_running_example()
        )
        tracer = context.obs.tracer
        names = [record[0] for record in tracer.spans]
        for name in STAGE_SPANS + ["build.plan", "build.rows"]:
            assert name in names
        # Construction phases nest inside the build stage span.
        by_name = {record[0]: record for record in tracer.spans}
        assert by_name["build.plan"][3] > by_name["mine.build"][3]
        assert by_name["build.rows"][3] > by_name["mine.build"][3]
        document = tracer.chrome_trace()
        assert {event["ph"] for event in document["traceEvents"]} <= {
            "M",
            "X",
            "i",
        }
        counters = context.obs.metrics.snapshot()["counters"]
        assert "search.gains_computed" in counters
        assert context.obs.metrics.snapshot()["gauges"][
            "encode.num_coresets"
        ] > 0

    def test_supervised_run_adopts_worker_lanes_and_retry_instants(self):
        config = CSPMConfig(
            trace=True,
            construction="partitioned",
            construction_workers=2,
            fault_plan=crash_plan("construction"),
        )
        context = MiningPipeline.default(config).run_context(planted())
        tracer = context.obs.tracer
        lanes = [lane for _pid, lane, _spans in tracer.adopted]
        assert any(lane.startswith("construction[") for lane in lanes)
        for _pid, _lane, spans in tracer.adopted:
            assert all(
                record[0] == "build.partition" for record in spans
            )
        assert "supervisor.retry" in [
            record[0] for record in tracer.events
        ]
        assert "supervisor.round" in [
            record[0] for record in tracer.spans
        ]


# ----------------------------------------------------------------------
# Non-interference: traced == untraced, at every pool site
# ----------------------------------------------------------------------


class TestTracedBitExactness:
    def test_serial_traced_run_is_bit_exact(self):
        graph = planted()
        reference = CSPM().fit(graph)
        traced = CSPM(
            config=CSPMConfig(trace=True, metrics=True, progress=True)
        ).fit(graph)
        # progress writes to stderr; the signature must still match.
        assert run_signature(traced) == run_signature(reference)

    def test_partitioned_construction_traced_under_crash(self):
        graph = planted(seed=11)
        reference = CSPM().fit(graph)
        traced = CSPM(
            config=CSPMConfig(
                trace=True,
                metrics=True,
                construction="partitioned",
                construction_workers=2,
                fault_plan=crash_plan("construction"),
            )
        ).fit(graph)
        assert run_signature(traced) == run_signature(reference)

    def test_sharded_search_traced_under_crash(self):
        graph = planted(seed=13)
        reference = CSPM().fit(graph)
        traced = CSPM(
            config=CSPMConfig(
                trace=True,
                metrics=True,
                search="sharded",
                search_workers=2,
                fault_plan=crash_plan("search"),
            )
        ).fit(graph)
        assert run_signature(traced) == run_signature(reference)

    def test_fit_many_process_traced_under_crash(self):
        graphs = [paper_running_example(), planted(seed=17)]
        serial = fit_many(graphs, CSPMConfig())
        traced = fit_many(
            graphs,
            CSPMConfig(
                trace=True,
                metrics=True,
                fault_plan=crash_plan("batch"),
            ),
            n_jobs=2,
            executor="process",
        )
        for left, right in zip(serial, traced):
            assert run_signature(right.result) == run_signature(left.result)
        obs = traced.obs
        assert obs is not None and obs.tracer.enabled
        # Every successful run's spans came home into a batch lane.
        lanes = [lane for _pid, lane, _spans in obs.tracer.adopted]
        assert len(lanes) == len(graphs)
        assert all(lane.startswith("batch[") for lane in lanes)
        histograms = obs.metrics.snapshot()["histograms"]
        assert histograms["batch.run_seconds"]["count"] == len(graphs)


# ----------------------------------------------------------------------
# Batch timing symmetry + CLI surfaces
# ----------------------------------------------------------------------


class TestBatchTiming:
    def test_failed_run_still_records_wall_clock(self):
        graphs = [paper_running_example(), AttributedGraph()]
        batch = fit_many(graphs, CSPMConfig(metrics=True))
        assert batch[0].ok and not batch[1].ok
        assert batch[1].seconds >= 0.0
        assert batch.total_seconds == pytest.approx(
            sum(run.seconds for run in batch)
        )
        histograms = batch.obs.metrics.snapshot()["histograms"]
        # The failed run's duration is observed too.
        assert histograms["batch.run_seconds"]["count"] == len(graphs)
        counters = batch.obs.metrics.snapshot()["counters"]
        assert counters["batch.runs"] == len(graphs)
        assert counters["batch.run_failures"] == 1


class TestCLI:
    @pytest.fixture()
    def paper_graph_file(self, tmp_path):
        path = tmp_path / "paper.json"
        save_json(paper_running_example(), path)
        return str(path)

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_version_subcommand(self, capsys):
        from repro import __version__

        assert cli_main(["version"]) == 0
        assert capsys.readouterr().out.strip() == __version__

    def test_traced_mine_json_is_byte_identical(
        self, paper_graph_file, tmp_path, capsys
    ):
        assert cli_main(["mine", paper_graph_file, "--json"]) == 0
        untraced = capsys.readouterr().out
        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.json"
        assert (
            cli_main(
                [
                    "mine",
                    paper_graph_file,
                    "--json",
                    "--trace",
                    str(trace_file),
                    "--metrics",
                    str(metrics_file),
                    "--progress",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        # The config echo legitimately records the enabled knobs; every
        # mining payload byte (astars, trace, DL floats) is identical.
        reference = json.loads(untraced)
        traced = json.loads(captured.out)
        for knob in ("trace", "metrics", "progress"):
            assert traced["config"].pop(knob) is True
            assert knob not in reference["config"]
        assert traced == reference
        assert "wrote trace to" in captured.err
        document = json.loads(trace_file.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert set(STAGE_SPANS) <= names
        snapshot = json.loads(metrics_file.read_text())
        assert "search.gains_computed" in snapshot["counters"]
