"""Proof-of-equivalence suite for CSPM-Partial's lazy refresh scope.

The lazy scope defers the post-merge neighbourhood refresh: stored
gains stay in the queue as sound upper bounds (merges not involving a
pair's leafsets only shrink ``fe``), refreshes provably unchanged by
the merge are skipped via union-mask tests, and revalidation happens
only when a dirty pair reaches the queue head.  Everything here pins
the headline guarantee — the mined model, the merge sequence and the
incremental DL accounting are *bit-identical* to both CSPM-Basic and
the exhaustive scope — plus the counter semantics the perf suite
records (``refreshes_skipped``/``dirty_revalidations``).
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import UPDATE_SCOPES, run_partial
from repro.core.gain import GainEngine
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import description_length
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def setup(graph):
    return (
        InvertedDatabase.from_graph(graph),
        StandardCodeTable.from_graph(graph),
        CoreCodeTable.singletons_from_graph(graph),
    )


def random_graph(seed, num_vertices=50, num_edges=120):
    graph, _ = planted_astar_graph(
        num_vertices,
        num_edges,
        [
            PlantedAStar("p", ("q", "r"), strength=0.9),
            PlantedAStar("s", ("t",), strength=0.85),
        ],
        noise_values=("n1", "n2", "n3"),
        noise_rate=0.25,
        seed=seed,
    )
    return graph


class TestScopeRegistry:
    def test_lazy_is_a_scope_and_the_default(self):
        from repro.config import CSPMConfig
        from repro.config import UPDATE_SCOPES as CONFIG_SCOPES

        assert "lazy" in UPDATE_SCOPES
        assert UPDATE_SCOPES == CONFIG_SCOPES
        assert CSPMConfig().partial_update_scope == "lazy"

    def test_default_run_partial_scope_is_lazy(self, paper_graph):
        trace = run_partial(*setup(paper_graph))
        assert trace.algorithm == "cspm-partial/lazy"


class TestBitExactEquivalence:
    """Lazy must reproduce Basic's and exhaustive's model bit-for-bit."""

    @pytest.mark.parametrize("seed", range(8))
    def test_lazy_matches_basic_and_exhaustive(self, seed):
        graph = random_graph(seed)
        db_basic, standard, core = setup(graph)
        trace_basic = run_basic(db_basic, standard, core)
        db_lazy, _, _ = setup(graph)
        trace_lazy = run_partial(db_lazy, standard, core, update_scope="lazy")
        db_exh, _, _ = setup(graph)
        trace_exh = run_partial(db_exh, standard, core, update_scope="exhaustive")

        # Identical models (exact snapshot equality) ...
        assert db_lazy.snapshot() == db_basic.snapshot()
        assert db_lazy.snapshot() == db_exh.snapshot()
        # ... produced by the identical merge sequence ...
        assert [t.merged_pair for t in trace_lazy.iterations] == [
            t.merged_pair for t in trace_basic.iterations
        ]
        # ... with bit-identical incremental DL accounting vs the
        # exhaustive scope (clean-head merges reuse stored breakdowns,
        # so every subtracted float must be the very same one).
        assert trace_lazy.final_dl_bits == trace_exh.final_dl_bits
        assert [t.total_dl_bits for t in trace_lazy.iterations] == [
            t.total_dl_bits for t in trace_exh.iterations
        ]
        assert trace_lazy.final_dl_bits == pytest.approx(
            trace_basic.final_dl_bits, abs=1e-9
        )

    def test_lazy_tracked_dl_matches_reference_recompute(self):
        graph = random_graph(3)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core, update_scope="lazy")
        reference = description_length(db, standard, core).total_bits
        assert trace.final_dl_bits == pytest.approx(reference, abs=1e-6)
        db.validate(graph)

    def test_pair_source_full_is_bit_exact_too(self):
        graph = random_graph(5)
        db_o, standard, core = setup(graph)
        trace_o = run_partial(db_o, standard, core, pair_source="overlap")
        db_f, _, _ = setup(graph)
        trace_f = run_partial(db_f, standard, core, pair_source="full")
        assert db_o.snapshot() == db_f.snapshot()
        assert trace_o.final_dl_bits == trace_f.final_dl_bits


VALUES = ["a", "b", "c", "d", "e"]


@st.composite
def attributed_graphs(draw, max_vertices=10):
    from repro.graphs.attributed_graph import AttributedGraph

    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = AttributedGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
        size = draw(st.integers(min_value=1, max_value=3))
        values = draw(
            st.sets(st.sampled_from(VALUES), min_size=size, max_size=size)
        )
        graph.set_attributes(vertex, values)
    for vertex in range(1, n):
        graph.add_edge(vertex - 1, vertex)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@given(graph=attributed_graphs())
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_property_lazy_and_exhaustive_reach_identical_dl(graph):
    """Lazy, exhaustive and Basic converge to the same model and DL on
    arbitrary small graphs; the related heuristic follows its own merge
    path (it may stop earlier or even luck into a better model), so it
    is only held to internally-consistent DL accounting."""
    db_basic, standard, core = setup(graph)
    trace_basic = run_basic(db_basic, standard, core)
    db_lazy, _, _ = setup(graph)
    trace_lazy = run_partial(db_lazy, standard, core, update_scope="lazy")
    db_exh, _, _ = setup(graph)
    trace_exh = run_partial(db_exh, standard, core, update_scope="exhaustive")
    db_rel, _, _ = setup(graph)
    trace_rel = run_partial(db_rel, standard, core, update_scope="related")

    assert db_lazy.snapshot() == db_basic.snapshot() == db_exh.snapshot()
    assert trace_lazy.final_dl_bits == trace_exh.final_dl_bits
    assert math.isclose(
        trace_lazy.final_dl_bits,
        trace_basic.final_dl_bits,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    assert math.isclose(
        trace_rel.final_dl_bits,
        description_length(db_rel, standard, core).total_bits,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )


class TestCounters:
    def test_lazy_records_skips_and_revalidations(self):
        graph = random_graph(2)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core, update_scope="lazy")
        assert trace.refreshes_skipped > 0
        assert trace.dirty_revalidations >= 0
        # Every merge was accounted: skips + computations >= pops.
        assert trace.total_gain_computations > 0

    @pytest.mark.parametrize("scope", ["exhaustive", "related"])
    def test_counters_zero_for_eager_scopes(self, scope):
        graph = random_graph(2)
        db, standard, core = setup(graph)
        trace = run_partial(db, standard, core, update_scope=scope)
        assert trace.refreshes_skipped == 0
        assert trace.dirty_revalidations == 0

    def test_counters_zero_for_basic(self):
        graph = random_graph(2)
        trace = run_basic(*setup(graph))
        assert trace.refreshes_skipped == 0
        assert trace.dirty_revalidations == 0

    def test_lazy_computes_fewer_gains_than_exhaustive(self):
        graph = random_graph(4)
        db_l, standard, core = setup(graph)
        trace_l = run_partial(db_l, standard, core, update_scope="lazy")
        db_e, _, _ = setup(graph)
        trace_e = run_partial(db_e, standard, core, update_scope="exhaustive")
        assert trace_l.total_gain_computations < trace_e.total_gain_computations
        # The skipped work is exactly what the counters claim: the
        # lazy run evaluated fewer pairs, not different ones.
        assert trace_l.num_iterations == trace_e.num_iterations


class TestStaleness:
    """GainEngine.stale_since drives the clean-head fast path."""

    def test_fresh_pairs_are_clean_and_merges_dirty_them(self):
        graph = random_graph(1)
        db, standard, core = setup(graph)
        engine = GainEngine(db, standard, core)
        leafsets = db.interner.order(db.leafsets())
        leaf_x, leaf_y = None, None
        for i, a in enumerate(leafsets):
            for b in leafsets[i + 1 :]:
                if db.common_coresets(a, b):
                    leaf_x, leaf_y = a, b
                    break
            if leaf_x is not None:
                break
        assert leaf_x is not None, "graph should have a sharing pair"
        at = db.merge_epoch
        assert not engine.stale_since(leaf_x, leaf_y, at)
        db.merge(leaf_x, leaf_y)
        assert engine.stale_since(leaf_x, leaf_y, at)
        # A gain validated *after* the merge is clean again.
        assert not engine.stale_since(leaf_x, leaf_y, db.merge_epoch)

    def test_unrelated_pair_stays_clean(self):
        from repro.graphs.attributed_graph import AttributedGraph

        graph = AttributedGraph.from_edges(
            edges=[(0, 1), (2, 3)],
            attributes={0: {"a"}, 1: {"b", "c"}, 2: {"x"}, 3: {"y", "z"}},
        )
        db, standard, core = setup(graph)
        engine = GainEngine(db, standard, core)
        at = db.merge_epoch
        db.merge(frozenset(["b"]), frozenset(["c"]))
        # The (y, z) pair lives in the other component: no common
        # coreset was touched, its stored gain would still be exact.
        assert not engine.stale_since(frozenset(["y"]), frozenset(["z"]), at)

    def test_epochs_exposed_by_database(self):
        graph = random_graph(0)
        db, _standard, _core = setup(graph)
        assert db.merge_epoch == 0
        leafsets = db.interner.order(db.leafsets())
        pair = None
        for i, a in enumerate(leafsets):
            for b in leafsets[i + 1 :]:
                cores = db.common_coresets(a, b)
                if cores:
                    pair = (a, b, cores)
                    break
            if pair:
                break
        a, b, cores = pair
        outcome = db.merge(a, b)
        assert db.merge_epoch == 1
        for core_key in outcome.touched_coresets:
            assert db.core_epoch(core_key) == 1
        if outcome.touched_coresets:
            assert db.leaf_epoch(outcome.new_leafset) == 1


class TestGainEngineMemoisation:
    def test_gain_is_orientation_independent(self):
        graph = random_graph(6)
        db, standard, core = setup(graph)
        engine = GainEngine(db, standard, core)
        leafsets = db.interner.order(db.leafsets())
        checked = 0
        for i, a in enumerate(leafsets):
            for b in leafsets[i + 1 :]:
                forward = engine.gain(a, b)
                backward = engine.gain(b, a)
                assert forward == backward  # exact float equality
                checked += 1
        assert checked > 0

    def test_cached_common_cores_survive_unrelated_merges(self):
        graph = random_graph(7)
        db, standard, core = setup(graph)
        engine = GainEngine(db, standard, core)
        interner = db.interner
        leafsets = interner.order(db.leafsets())
        a, b = leafsets[0], leafsets[1]
        id_a, id_b = sorted((interner.intern(a), interner.intern(b)))
        first = engine.common_cores(
            interner.leafset_of(id_a), interner.leafset_of(id_b), id_a, id_b
        )
        again = engine.common_cores(
            interner.leafset_of(id_a), interner.leafset_of(id_b), id_a, id_b
        )
        assert again is first  # served from cache

    def test_gain_matches_pair_gain_reference(self):
        from repro.core.gain import pair_gain

        graph = random_graph(9)
        db, standard, core = setup(graph)
        engine = GainEngine(db, standard, core)
        leafsets = db.interner.order(db.leafsets())
        for i, a in enumerate(leafsets[:8]):
            for b in leafsets[i + 1 : 8]:
                fast = engine.gain(a, b)
                reference = pair_gain(db, a, b, standard, core)
                assert fast.net(True) == pytest.approx(
                    reference.net(True), abs=1e-9
                )
                assert fast.total == pytest.approx(reference.total, abs=1e-9)


class TestIncrementalFinalDL:
    """The pipeline derives the end-of-run DL without a full pass."""

    def test_result_defers_component_recompute(self, paper_graph):
        from repro import CSPM

        result = CSPM().fit(paper_graph)
        # The component breakdown is absent until accessed ...
        assert "final_dl" not in result.__dict__
        assert result.final_dl_bits == result.trace.final_dl_bits
        assert "final_dl" not in result.__dict__
        # ... and the first access recomputes (sorted, reference-exact)
        # and caches.
        reference = description_length(
            result.inverted_db, result.standard_table, result.core_table
        )
        assert result.final_dl == reference
        assert result.__dict__["final_dl"] == reference

    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_total_matches_recompute(self, seed):
        from repro import CSPM

        result = CSPM().fit(random_graph(seed, num_vertices=30, num_edges=70))
        recomputed = description_length(
            result.inverted_db, result.standard_table, result.core_table
        )
        assert result.final_dl_bits == pytest.approx(
            recomputed.total_bits, abs=1e-6
        )
        # Component-wise incremental sums track the recompute too.
        trace = result.trace
        initial = result.initial_dl
        assert initial.model_core_bits == pytest.approx(
            recomputed.model_core_bits, abs=1e-9
        )
        assert initial.model_leaf_bits - trace.model_gain_bits == pytest.approx(
            recomputed.model_leaf_bits, abs=1e-6
        )
        assert initial.data_leaf_bits - trace.data_leaf_gain_bits == pytest.approx(
            recomputed.data_leaf_bits, abs=1e-6
        )
        assert initial.data_core_bits - trace.data_core_gain_bits == pytest.approx(
            recomputed.data_core_bits, abs=1e-6
        )

    def test_deserialised_result_carries_final_dl_explicitly(self, paper_graph):
        from repro import CSPM, CSPMResult

        mined = CSPM().fit(paper_graph)
        restored = CSPMResult.from_json(mined.to_json())
        assert restored.inverted_db is None
        assert "final_dl" in restored.__dict__  # no recompute needed
        assert restored.final_dl == mined.final_dl

    def test_incremental_fallback_without_database(self, paper_graph):
        from dataclasses import replace

        from repro import CSPM

        mined = CSPM().fit(paper_graph)
        # A result whose database is gone and whose breakdown was never
        # materialised falls back to the trace's component sums.
        orphan = replace(mined, final_dl=None, inverted_db=None)
        assert "final_dl" not in orphan.__dict__
        fallback = orphan.final_dl
        trace = mined.trace
        initial = mined.initial_dl
        assert fallback.model_core_bits == initial.model_core_bits
        assert fallback.model_leaf_bits == (
            initial.model_leaf_bits - trace.model_gain_bits
        )
        assert fallback.data_leaf_bits == (
            initial.data_leaf_bits - trace.data_leaf_gain_bits
        )
        assert fallback.data_core_bits == (
            initial.data_core_bits - trace.data_core_gain_bits
        )
        assert fallback.total_bits == pytest.approx(
            mined.final_dl.total_bits, abs=1e-6
        )
