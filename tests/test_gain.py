"""Tests for the incremental gain (Eq. 9-15).

The central invariant: for any pair, the incremental gain equals the
difference of the from-scratch description lengths before and after
the merge — component by component.
"""

import pytest

from repro.core.gain import GainEngine, pair_gain
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import description_length
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def fs(*values):
    return frozenset(values)


def assert_gain_matches_reference(db, standard, core, leaf_x, leaf_y):
    """Incremental gain == reference DL delta, per component."""
    breakdown = pair_gain(db, leaf_x, leaf_y, standard, core)
    before = description_length(db, standard, core)
    db.merge(leaf_x, leaf_y)
    after = description_length(db, standard, core)
    assert breakdown.data_leaf_gain == pytest.approx(
        before.data_leaf_bits - after.data_leaf_bits, abs=1e-9
    )
    assert breakdown.model_gain == pytest.approx(
        before.model_bits - after.model_bits, abs=1e-9
    )
    assert breakdown.data_core_gain == pytest.approx(
        before.data_core_bits - after.data_core_bits, abs=1e-9
    )
    assert breakdown.total == pytest.approx(
        before.total_bits - after.total_bits, abs=1e-9
    )


class TestPaperMerge:
    def test_fig4_gain_matches_reference(self, paper_db, paper_tables):
        standard, core = paper_tables
        assert_gain_matches_reference(paper_db, standard, core, fs("b"), fs("c"))

    def test_second_merge_matches_reference(self, paper_db, paper_tables):
        standard, core = paper_tables
        paper_db.merge(fs("b"), fs("c"))
        assert_gain_matches_reference(paper_db, standard, core, fs("a"), fs("b"))

    def test_gain_positive_for_paper_pair(self, paper_db, paper_tables):
        standard, core = paper_tables
        breakdown = pair_gain(paper_db, fs("b"), fs("c"), standard, core)
        assert breakdown.net(include_model_cost=True) > 0
        assert breakdown.net(include_model_cost=False) > 0

    def test_no_common_coreset_means_zero(self, paper_db, paper_tables):
        standard, core = paper_tables
        # Construct a pair without common coresets by merging first.
        paper_db.merge(fs("b"), fs("c"))
        gain = pair_gain(paper_db, fs("b", "c"), fs("b"), standard, core)
        # {b,c} and {b} share coreset {a}? After Fig. 4 the {b} leafset
        # only remains under coreset {b}, where {b,c} also has a row,
        # but their positions are disjoint -> all xye = 0 -> zero gain.
        assert gain.data_leaf_gain == 0.0
        assert gain.model_gain == 0.0
        assert gain.data_core_gain == 0.0


class TestRandomizedReferenceChecks:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_positive_pair_matches_reference(self, seed):
        graph, _ = planted_astar_graph(
            40,
            90,
            [PlantedAStar("c", ("u", "v"), strength=0.9)],
            noise_values=("n1", "n2"),
            noise_rate=0.25,
            seed=seed,
        )
        from repro.core.code_table import CoreCodeTable, StandardCodeTable

        standard = StandardCodeTable.from_graph(graph)
        core = CoreCodeTable.singletons_from_graph(graph)
        db = InvertedDatabase.from_graph(graph)
        leafsets = sorted(db.leafsets(), key=lambda l: sorted(map(repr, l)))
        checked = 0
        for i, leaf_x in enumerate(leafsets):
            for leaf_y in leafsets[i + 1 :]:
                stats = db.merge_stats(leaf_x, leaf_y)
                if not any(s.xye > 0 for s in stats):
                    continue
                clone = db.copy()
                assert_gain_matches_reference(clone, standard, core, leaf_x, leaf_y)
                checked += 1
                if checked >= 10:
                    return
        assert checked > 0


class TestGainEngine:
    def test_engine_matches_pair_gain(self, paper_db, paper_tables):
        standard, core = paper_tables
        engine = GainEngine(paper_db, standard, core)
        leafsets = sorted(paper_db.leafsets(), key=lambda l: sorted(map(repr, l)))
        for i, leaf_x in enumerate(leafsets):
            for leaf_y in leafsets[i + 1 :]:
                fast = engine.gain(leaf_x, leaf_y)
                slow = pair_gain(paper_db, leaf_x, leaf_y, standard, core)
                assert fast.data_leaf_gain == pytest.approx(slow.data_leaf_gain)
                assert fast.model_gain == pytest.approx(slow.model_gain)
                assert fast.data_core_gain == pytest.approx(slow.data_core_gain)

    def test_engine_matches_after_merge(self, paper_db, paper_tables):
        standard, core = paper_tables
        engine = GainEngine(paper_db, standard, core)
        paper_db.merge(fs("b"), fs("c"))
        fast = engine.gain(fs("a"), fs("b", "c"))
        slow = pair_gain(paper_db, fs("a"), fs("b", "c"), standard, core)
        assert fast.data_leaf_gain == pytest.approx(slow.data_leaf_gain)
        assert fast.model_gain == pytest.approx(slow.model_gain)

    def test_zero_gain_without_model_tables(self, paper_db):
        engine = GainEngine(paper_db)
        breakdown = engine.gain(fs("b"), fs("c"))
        assert breakdown.model_gain == 0.0
        assert breakdown.data_core_gain == 0.0
        assert breakdown.data_leaf_gain != 0.0

    def test_xlogx_table_is_lazy_and_exact(self, paper_db, paper_tables):
        from repro.core.mdl import xlog2x

        standard, core = paper_tables
        engine = GainEngine(paper_db, standard, core)
        # No eager allocation proportional to total frequency.
        assert len(engine._xlogx) == 2
        for x in (1, 2, 3, 7, 100, 101):
            assert engine._xl(x) == pytest.approx(xlog2x(x), abs=1e-12)
        # Grown geometrically, bounded by what was actually requested.
        size = len(engine._xlogx)
        assert 101 < size <= 2 * 102
        # Re-reads hit the table without growing it further.
        engine._xl(100)
        assert len(engine._xlogx) == size

    def test_net_respects_model_cost_flag(self, paper_db, paper_tables):
        standard, core = paper_tables
        breakdown = pair_gain(paper_db, fs("b"), fs("c"), standard, core)
        assert breakdown.net(True) == pytest.approx(
            breakdown.data_leaf_gain + breakdown.model_gain
        )
        assert breakdown.net(False) == pytest.approx(breakdown.data_leaf_gain)
