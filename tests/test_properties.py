"""Property-based tests (hypothesis) of the core invariants.

Random attributed graphs are generated from a compact strategy, and
the DESIGN.md invariants are checked on them: cover uniqueness and
losslessness of the inverted database through arbitrary merge
sequences, DL monotonicity, Eq. 7/8 identity, and Basic/Partial
equivalence.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.candidates import leafset_sort_key
from repro.core.code_table import CoreCodeTable, StandardCodeTable
from repro.core.cspm_basic import run_basic
from repro.core.cspm_partial import run_partial
from repro.core.gain import pair_gain
from repro.core.inverted_db import InvertedDatabase
from repro.core.mdl import (
    conditional_entropy,
    data_leaf_bits,
    description_length,
)
from repro.core.miner import CSPM
from repro.graphs.attributed_graph import AttributedGraph

VALUES = ["a", "b", "c", "d", "e"]


@st.composite
def attributed_graphs(draw, max_vertices=10):
    """Small connected-ish attributed graphs with 1-3 values/vertex."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = AttributedGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
        size = draw(st.integers(min_value=1, max_value=3))
        values = draw(
            st.sets(st.sampled_from(VALUES), min_size=size, max_size=size)
        )
        graph.set_attributes(vertex, values)
    # A spanning chain plus random extra edges.
    for vertex in range(1, n):
        graph.add_edge(vertex - 1, vertex)
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph=attributed_graphs())
@common
def test_initial_database_is_lossless(graph):
    db = InvertedDatabase.from_graph(graph)
    db.validate(graph)


@given(graph=attributed_graphs(), data=st.data())
@common
def test_merges_preserve_losslessness(graph, data):
    """Any sequence of (even non-improving) merges keeps the cover a
    lossless partition of the neighbourhood relation."""
    db = InvertedDatabase.from_graph(graph)
    for _ in range(3):
        leafsets = sorted(db.leafsets(), key=leafset_sort_key)
        if len(leafsets) < 2:
            break
        i = data.draw(st.integers(min_value=0, max_value=len(leafsets) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(leafsets) - 1))
        if i == j:
            continue
        db.merge(leafsets[i], leafsets[j])
        db.validate(graph)


@given(graph=attributed_graphs())
@common
def test_entropy_identity_holds(graph):
    """Eq. 8: L(I|M) == s * H(Y|X) on arbitrary databases."""
    db = InvertedDatabase.from_graph(graph)
    s = db.total_frequency()
    assert math.isclose(
        data_leaf_bits(db), s * conditional_entropy(db), rel_tol=1e-9, abs_tol=1e-9
    )


@given(graph=attributed_graphs(), data=st.data())
@common
def test_gain_matches_reference_dl_delta(graph, data):
    """Eq. 9-15 incremental gain == from-scratch DL difference."""
    standard = StandardCodeTable.from_graph(graph)
    core = CoreCodeTable.singletons_from_graph(graph)
    db = InvertedDatabase.from_graph(graph)
    leafsets = sorted(db.leafsets(), key=leafset_sort_key)
    if len(leafsets) < 2:
        return
    i = data.draw(st.integers(min_value=0, max_value=len(leafsets) - 2))
    j = data.draw(st.integers(min_value=i + 1, max_value=len(leafsets) - 1))
    breakdown = pair_gain(db, leafsets[i], leafsets[j], standard, core)
    before = description_length(db, standard, core)
    db.merge(leafsets[i], leafsets[j])
    after = description_length(db, standard, core)
    assert math.isclose(
        breakdown.total,
        before.total_bits - after.total_bits,
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


@given(graph=attributed_graphs())
@common
def test_search_dl_monotone_and_consistent(graph):
    """Every accepted merge lowers the DL; the tracked DL matches a
    final from-scratch recomputation."""
    standard = StandardCodeTable.from_graph(graph)
    core = CoreCodeTable.singletons_from_graph(graph)
    db = InvertedDatabase.from_graph(graph)
    trace = run_partial(db, standard, core)
    dls = [trace.initial_dl_bits] + [t.total_dl_bits for t in trace.iterations]
    assert all(b < a + 1e-9 for a, b in zip(dls, dls[1:]))
    reference = description_length(db, standard, core).total_bits
    assert math.isclose(trace.final_dl_bits, reference, rel_tol=1e-9, abs_tol=1e-6)
    db.validate(graph)


@given(graph=attributed_graphs(max_vertices=8))
@common
def test_basic_equals_partial(graph):
    """The exhaustive partial search reproduces Basic's model exactly."""
    standard = StandardCodeTable.from_graph(graph)
    core = CoreCodeTable.singletons_from_graph(graph)
    db_basic = InvertedDatabase.from_graph(graph)
    trace_basic = run_basic(db_basic, standard, core)
    db_partial = InvertedDatabase.from_graph(graph)
    trace_partial = run_partial(db_partial, standard, core)
    assert math.isclose(
        trace_basic.final_dl_bits,
        trace_partial.final_dl_bits,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    assert db_basic.snapshot() == db_partial.snapshot()


@given(graph=attributed_graphs(max_vertices=8))
@common
def test_mined_astars_have_valid_codes(graph):
    result = CSPM().fit(graph)
    for star in result.astars:
        assert star.code_length >= 0.0
        assert 0 < star.frequency <= star.coreset_frequency
        # Matching semantics: the pattern occurs at least as often as
        # it is used in the cover.
        assert star.frequency <= len(star.occurrences(graph))
