"""Telecom alarm correlation analysis (the paper's Section VI-D).

Simulates an alarm feed from a device network with a planted AABD-style
rule library (11 star rules -> 121 pair rules), mines a-stars with
CSPM, extracts cause -> derivative rules, and compares the coverage
ratio of CSPM and the ACOR baseline (the paper's Fig. 8).

Usage::

    python examples/alarm_correlation.py
"""

from repro import CSPMConfig
from repro.alarms import (
    acor_rank_pairs,
    coverage_curve,
    cspm_rank_pairs,
    default_rule_library,
    simulate_alarms,
)


def main() -> None:
    library = default_rule_library(seed=0)
    print(
        f"planted rule library: {len(library.rules)} star rules, "
        f"{library.num_pair_rules} pair rules"
    )
    for rule in library.rules[:3]:
        derivatives = ", ".join(rule.derivatives[:3])
        print(f"  ({rule.cause}, {{{derivatives}, ...}})")

    simulation = simulate_alarms(
        library,
        num_devices=100,
        num_windows=250,
        causes_per_window=2.5,
        propagation=0.85,
        neighbour_fraction=0.85,
        num_noise_types=40,
        noise_rate=3.0,
        # Realistic interference: flapping derivatives, fault cascades
        # and window-boundary splits (see DESIGN.md).
        derivative_flap_rate=2.0,
        cascade_probability=0.4,
        window_split_probability=0.5,
        seed=1,
    )
    print(
        f"\nsimulated {simulation.num_events} alarms of "
        f"{len(simulation.alarm_types())} types over "
        f"{simulation.num_windows} windows"
    )

    cspm_ranked = cspm_rank_pairs(simulation, config=CSPMConfig(method="partial"))
    acor_ranked = acor_rank_pairs(simulation)
    print("\ntop CSPM alarm rules (* = in the planted library):")
    truth = set(library.pair_rules())
    for pair, score in cspm_ranked[:8]:
        marker = "*" if pair in truth else " "
        print(f"  {marker} {pair}   (score {score:.2f})")

    ks = [50, 100, 250, 500, 1000, 1500, 2000]
    cspm_cov = coverage_curve(cspm_ranked, library.pair_rules(), ks)
    acor_cov = coverage_curve(acor_ranked, library.pair_rules(), ks)
    print("\ncoverage ratio (Fig. 8):")
    print("  top-K :" + "".join(f"{k:>7}" for k in ks))
    print("  CSPM  :" + "".join(f"{v:>7.2f}" for v in cspm_cov))
    print("  ACOR  :" + "".join(f"{v:>7.2f}" for v in acor_cov))


if __name__ == "__main__":
    main()
