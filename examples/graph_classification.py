"""Graph classification with a-star features (paper's future work 1).

The paper's conclusion proposes using mined a-stars for graph-level
learning.  This example builds two families of attributed graphs whose
only difference is *which* attribute correlation their communities
carry, embeds every graph over a shared mined a-star vocabulary, and
trains a logistic head on those features.

Usage::

    python examples/graph_classification.py
"""

from repro.core.features import AStarFeaturizer, LogisticAStarClassifier
from repro.graphs.generators import PlantedAStar, planted_astar_graph


def make_dataset(count, seed):
    """Class 0: smokers' friends drink; class 1: smokers' friends jog."""
    graphs, labels = [], []
    for index in range(count):
        label = index % 2
        leaves = ("beer",) if label == 0 else ("jogging",)
        graph, _ = planted_astar_graph(
            num_vertices=30,
            num_edges=70,
            patterns=[PlantedAStar("smoker", leaves, strength=0.95)],
            noise_values=("coffee", "tea"),
            noise_rate=0.2,
            seed=seed + index,
        )
        graphs.append(graph)
        labels.append(label)
    return graphs, labels


def main() -> None:
    train_graphs, train_labels = make_dataset(20, seed=0)
    test_graphs, test_labels = make_dataset(10, seed=1000)

    featurizer = AStarFeaturizer(vocabulary_size=30)
    classifier = LogisticAStarClassifier(featurizer=featurizer, seed=0)
    classifier.fit(train_graphs, train_labels)

    print("shared a-star vocabulary (top 6):")
    for star in featurizer.vocabulary[:6]:
        print(f"  {star}")

    train_accuracy = classifier.score(train_graphs, train_labels)
    test_accuracy = classifier.score(test_graphs, test_labels)
    print(f"\ntrain accuracy: {train_accuracy:.2f}")
    print(f"test accuracy : {test_accuracy:.2f}")
    probabilities = classifier.predict_proba(test_graphs[:4])
    print("sample probabilities:", [round(float(p), 3) for p in probabilities])


if __name__ == "__main__":
    main()
