"""Social-network profiling: the paper's Pokec scenario (Section VI-B).

Mines music-taste a-stars from a Pokec-style social network, prints
the most informative patterns (compare with the paper's examples
``({rap}, {rock, metal, pop, sladaky})`` and ``({disko}, {oldies,
disko})``), and uses the Algorithm 5 scorer to complete the profile of
a user whose tastes are hidden.

Usage::

    python examples/social_network_profiles.py
"""

from repro import CSPM, AStarScorer, CSPMConfig
from repro.datasets import pokec_like


def main() -> None:
    graph = pokec_like(seed=7)
    print(f"Pokec-style network: {graph}")

    result = CSPM(config=CSPMConfig(method="partial")).fit(graph)
    print(result.summary())
    print("\nmost informative music-taste patterns (leafset size >= 2):")
    for star in result.filter(min_leafset_size=2)[:8]:
        print(f"  {star}")

    # Profile completion: hide one user's tastes and score candidates
    # from the neighbourhood via the mined a-stars (Algorithm 5).
    scorer = AStarScorer(result)
    user = next(iter(graph.vertices()))
    true_tastes = graph.attributes_of(user)
    hidden = graph.copy()
    hidden.set_attributes(user, ())
    scores = scorer.score(hidden, user)
    ranked = sorted(scores.items(), key=lambda kv: -kv[1])
    print(f"\nuser {user}: true tastes = {sorted(map(str, true_tastes))}")
    print("top predicted tastes from friends' profiles:")
    for value, score in ranked[:6]:
        marker = "*" if value in true_tastes else " "
        print(f"  {marker} {value:<10} score={score:.3f}")


if __name__ == "__main__":
    main()
