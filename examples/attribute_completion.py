"""Node attribute completion boosted by CSPM (the paper's Table IV).

Hides the attributes of 40% of the nodes of a Cora-style citation
network, trains completion baselines, and shows how fusing their
probabilities with CSPM's a-star scores (Fig. 7) improves Recall@K and
NDCG@K.

Usage::

    python examples/attribute_completion.py
"""

from repro import CSPMConfig
from repro.completion.experiment import run_completion_experiment
from repro.datasets import cora_like


def main() -> None:
    graph = cora_like(scale=0.12, seed=3)
    print(f"Cora-style citation network: {graph}")
    report = run_completion_experiment(
        graph,
        dataset_name="cora-like",
        ks=(10, 20, 50),
        models=["neighaggre", "vae", "gcn"],
        test_fraction=0.4,
        seed=0,
        cspm_config=CSPMConfig(method="partial"),
    )
    print()
    print(report.as_table())
    print(
        "\nEvery baseline improves when multiplied with the CSPM score "
        "matrix — the Table IV effect."
    )


if __name__ == "__main__":
    main()
