"""Quickstart: mine attribute-stars from a small attributed graph.

Runs CSPM on the paper's running example (Fig. 1) and on a slightly
larger social-style graph, showing the three spellings of the public
API:

1. the ``CSPM`` facade with a typed :class:`repro.CSPMConfig`;
2. the composable :class:`repro.MiningPipeline` with a custom stage;
3. the batch entry point :func:`repro.fit_many` plus JSON round-trips.

Usage::

    python examples/quickstart.py
"""

from repro import (
    CSPM,
    AttributedGraph,
    CSPMConfig,
    CSPMResult,
    MiningPipeline,
    fit_many,
)
from repro.graphs.builders import paper_running_example


def mine_and_report(graph: AttributedGraph, title: str) -> None:
    print(f"=== {title}")
    print(f"graph: {graph}")
    result = CSPM(config=CSPMConfig()).fit(graph)
    print(result.summary())
    print("a-stars (ascending code length = descending informativeness):")
    for star in result.astars:
        print(f"  {star}")
    print()


def main() -> None:
    # 1. The five-vertex running example from the paper (Fig. 1-4).
    mine_and_report(paper_running_example(), "paper running example")

    # 2. A small social network: smokers' friends tend to smoke, and
    #    joggers cluster too (the paper's motivating intuition).
    edges = [
        (1, 2), (1, 3), (2, 3), (3, 4),
        (4, 5), (5, 6), (5, 7), (6, 7),
        (2, 8), (8, 9), (8, 10), (9, 10),
    ]
    attributes = {
        1: {"smoker", "coffee"},
        2: {"smoker"},
        3: {"smoker", "coffee"},
        4: {"coffee"},
        5: {"jogger"},
        6: {"jogger", "vegan"},
        7: {"jogger", "vegan"},
        8: {"smoker", "beer"},
        9: {"smoker", "beer"},
        10: {"beer"},
    }
    graph = AttributedGraph.from_edges(edges, attributes)
    mine_and_report(graph, "tiny social network")

    # 3. The explicit pipeline: the same four stages CSPM.fit runs,
    #    plus a custom instrumentation tap inserted before the search.
    def tap(context) -> None:
        print(
            f"[tap] inverted DB has {context.inverted_db.num_rows} rows "
            f"over {len(list(context.core_table.coresets()))} coresets"
        )

    pipeline = MiningPipeline.default(CSPMConfig(top_k=5)).with_stage(
        tap, before="Search"
    )
    result = pipeline.run(graph)
    print("top-5 via pipeline:")
    for star in result.astars:
        print(f"  {star}")

    # The result object is fully serialisable (everything but the raw
    # inverted database) — ready for caching or a service response.
    payload = result.to_json()
    restored = CSPMResult.from_json(payload)
    assert restored.astars == result.astars
    print(f"\nJSON round-trip: {len(payload)} bytes, ranking preserved")

    # 4. Batch mining: one config over many graphs, with per-run timing.
    batch = fit_many([paper_running_example(), graph], CSPMConfig())
    print("\n" + batch.summary())

    # The same result object also exposes the run trace used by the
    # paper's efficiency experiments (Fig. 5).
    ratios = batch[1].result.trace.update_ratios()
    print("per-iteration gain update ratios:", [round(r, 3) for r in ratios])


if __name__ == "__main__":
    main()
