"""Table II — dataset statistics.

Regenerates the paper's dataset-statistics table on the synthetic
analogues: #Nodes, #Total edges, |Sc^M| (number of coresets in the
inverted database) and category, at the benchmark scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.datasets import load_dataset
from repro.graphs.stats import graph_stats

DATASETS = [
    # (name, generator scale, category reported in the paper)
    ("DBLP", 1.0, "Citation"),
    ("DBLP-Trend", 1.0, "Citation"),
    ("USFlight", 1.0, "Airport"),
    ("Pokec", None, "Music"),
]

_NAME_MAP = {
    "DBLP": "dblp",
    "DBLP-Trend": "dblp-trend",
    "USFlight": "usflight",
    "Pokec": "pokec",
}


@pytest.fixture(scope="module")
def graphs():
    scale = bench_scale()
    loaded = {}
    for name, base_scale, _category in DATASETS:
        effective = None if base_scale is None else base_scale * scale
        loaded[name] = load_dataset(_NAME_MAP[name], scale=effective, seed=0)
    return loaded


def test_table2_statistics(graphs, report_writer, benchmark):
    benchmark.pedantic(
        lambda: [graph_stats(g) for g in graphs.values()], rounds=1, iterations=1
    )
    header = (
        f"{'Dataset':<12}{'#Nodes':>10}{'#Edges':>12}"
        f"{'|Sc^M|':>8}{'|A|':>6}  Category"
    )
    lines = ["Table II analogue: dataset statistics", header, "-" * len(header)]
    for name, _scale, category in DATASETS:
        stats = graph_stats(graphs[name])
        lines.append(
            f"{name:<12}{stats.num_vertices:>10,}{stats.num_edges:>12,}"
            f"{stats.num_coresets:>8}{stats.num_values:>6}  {category}"
        )
        # Shape checks against the paper's table: DBLP-Trend has ~3x
        # DBLP's coresets; USFlight is small and dense.
    dblp = graph_stats(graphs["DBLP"])
    trend = graph_stats(graphs["DBLP-Trend"])
    flight = graph_stats(graphs["USFlight"])
    assert trend.num_coresets > 2 * dblp.num_coresets
    assert flight.num_vertices < dblp.num_vertices
    assert flight.avg_degree > dblp.avg_degree
    report_writer("table2_datasets", "\n".join(lines))


def test_benchmark_dataset_generation(benchmark):
    benchmark(load_dataset, "dblp", scale=bench_scale(), seed=1)
