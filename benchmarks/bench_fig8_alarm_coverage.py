"""Fig. 8 — alarm-rule coverage ratio: CSPM vs ACOR.

Simulates a telecom alarm feed with a planted AABD-style library
(11 rules -> 121 pair rules, as in the paper), ranks pair rules with
both algorithms and prints the coverage-vs-top-K curves.  Shape under
test: both curves rise with K; CSPM reaches full coverage and
dominates ACOR from moderate K on (ACOR's per-pair statistics degrade
under alarm flapping, fault cascades and window splits — the
interference real feeds exhibit).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.alarms import (
    acor_rank_pairs,
    coverage_curve,
    cspm_rank_pairs,
    default_rule_library,
    simulate_alarms,
)
from repro.alarms.analysis import area_under_coverage
from repro.config import CSPMConfig

TOP_KS = [50, 100, 250, 500, 750, 1000, 1250, 1500, 2000]


@pytest.fixture(scope="module")
def ranked_pairs():
    library = default_rule_library(seed=0)
    simulation = simulate_alarms(
        library,
        num_devices=100,
        num_windows=int(250 * bench_scale()),
        causes_per_window=2.5,
        propagation=0.85,
        neighbour_fraction=0.85,
        num_noise_types=40,
        noise_rate=3.0,
        derivative_flap_rate=2.0,
        cascade_probability=0.4,
        window_split_probability=0.5,
        seed=1,
    )
    return (
        library,
        cspm_rank_pairs(simulation, config=CSPMConfig(method="partial")),
        acor_rank_pairs(simulation),
    )


def test_fig8_coverage_curves(ranked_pairs, report_writer, benchmark):
    library, cspm_ranked, acor_ranked = ranked_pairs
    truth = library.pair_rules()
    benchmark.pedantic(
        lambda: coverage_curve(cspm_ranked, truth, TOP_KS), rounds=1, iterations=1
    )
    cspm_curve = coverage_curve(cspm_ranked, truth, TOP_KS)
    acor_curve = coverage_curve(acor_ranked, truth, TOP_KS)
    lines = [
        "Fig. 8 analogue: coverage ratio vs top-K "
        f"({len(truth)} planted pair rules)",
        "top-K :" + "".join(f"{k:>7}" for k in TOP_KS),
        "CSPM  :" + "".join(f"{v:>7.2f}" for v in cspm_curve),
        "ACOR  :" + "".join(f"{v:>7.2f}" for v in acor_curve),
        "",
        f"area under curve: CSPM={area_under_coverage(cspm_curve):.3f} "
        f"ACOR={area_under_coverage(acor_curve):.3f}",
    ]
    report_writer("fig8_alarm_coverage", "\n".join(lines))

    # Both curves are monotone.
    assert cspm_curve == sorted(cspm_curve)
    assert acor_curve == sorted(acor_curve)
    # CSPM recovers every valid rule within the evaluated K range.
    assert cspm_curve[-1] == pytest.approx(1.0)
    # CSPM dominates ACOR from moderate K on (the paper's headline).
    mid = len(TOP_KS) // 2
    assert all(c >= a for c, a in zip(cspm_curve[mid:], acor_curve[mid:]))
    assert area_under_coverage(cspm_curve[mid:]) > area_under_coverage(
        acor_curve[mid:]
    )


def test_benchmark_cspm_rule_extraction(benchmark, ranked_pairs):
    library, _cspm_ranked, _acor = ranked_pairs
    simulation = simulate_alarms(
        library, num_devices=60, num_windows=80, seed=2
    )
    benchmark.pedantic(
        lambda: cspm_rank_pairs(simulation), rounds=1, iterations=1
    )
