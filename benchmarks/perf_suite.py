#!/usr/bin/env python
"""Standalone runner for the CSPM perf suite (``repro.perf.suite``).

Usage (from the repo root)::

    python benchmarks/perf_suite.py --quick --check benchmarks/perf_bounds.json

Emits ``BENCH_cspm.json`` at the repo root by default; CI's perf-smoke
job runs exactly the command above and uploads the document as an
artifact.  Equivalent CLI spelling: ``repro bench``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

if __name__ == "__main__":
    try:
        from repro.perf.suite import main
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.perf.suite import main

    argv = sys.argv[1:]
    if not any(
        arg in ("--out", "--output")
        or arg.startswith(("--out=", "--output="))
        for arg in argv
    ):
        argv = ["--out", str(REPO_ROOT / "BENCH_cspm.json")] + argv
    sys.exit(main(argv))
