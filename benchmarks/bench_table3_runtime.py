"""Table III — runtime comparison: SLIM vs CSPM-Basic vs CSPM-Partial.

Reproduces the shape of the paper's runtime table: CSPM-Basic is the
slowest (it recomputes all pair gains each iteration), CSPM-Partial is
far faster, and SLIM (itemsets only, no topology) sits in between on
the larger datasets.  CSPM-Basic is skipped on Pokec, mirroring the
paper's 48-hour timeout entry ("-").
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_scale
from repro.config import CSPMConfig
from repro.core.miner import CSPM
from repro.datasets import load_dataset
from repro.itemsets.slim import slim_on_graph

DATASETS = [
    ("DBLP", "dblp", 1.0, True),
    ("DBLP-Trend", "dblp-trend", 1.0, True),
    ("USFlight", "usflight", 1.0, True),
    ("Pokec", "pokec", None, False),  # Basic skipped, as in the paper
]


@pytest.fixture(scope="module")
def runtimes():
    scale = bench_scale()
    rows = []
    for label, name, base_scale, run_basic in DATASETS:
        effective = None if base_scale is None else base_scale * scale
        graph = load_dataset(name, scale=effective, seed=0)

        start = time.perf_counter()
        slim_on_graph(graph, max_rounds=60)
        slim_seconds = time.perf_counter() - start

        basic_seconds = None
        if run_basic:
            start = time.perf_counter()
            CSPM(config=CSPMConfig(method="basic")).fit(graph)
            basic_seconds = time.perf_counter() - start

        start = time.perf_counter()
        CSPM(config=CSPMConfig(method="partial")).fit(graph)
        partial_seconds = time.perf_counter() - start

        rows.append((label, slim_seconds, basic_seconds, partial_seconds))
    return rows


def test_table3_runtime(runtimes, report_writer, benchmark):
    benchmark.pedantic(lambda: runtimes, rounds=1, iterations=1)
    header = f"{'Dataset':<12}{'SLIM':>10}{'CSPM-Basic':>14}{'CSPM-Partial':>14}"
    lines = ["Table III analogue: runtime (seconds)", header, "-" * len(header)]
    for label, slim_s, basic_s, partial_s in runtimes:
        basic_text = f"{basic_s:>14.2f}" if basic_s is not None else f"{'-':>14}"
        lines.append(f"{label:<12}{slim_s:>10.2f}{basic_text}{partial_s:>14.2f}")
    report_writer("table3_runtime", "\n".join(lines))

    # Shape assertions: Partial never slower than Basic; the gap is
    # largest on the dataset with the most leafsets (DBLP-Trend).
    for _label, _slim, basic_s, partial_s in runtimes:
        if basic_s is not None:
            assert partial_s <= basic_s * 1.2
    trend = next(r for r in runtimes if r[0] == "DBLP-Trend")
    assert trend[2] is not None and trend[2] > trend[3]


def test_benchmark_cspm_partial_dblp(benchmark):
    graph = load_dataset("dblp", scale=bench_scale(), seed=0)
    benchmark.pedantic(
        lambda: CSPM(config=CSPMConfig(method="partial")).fit(graph), rounds=1, iterations=1
    )


def test_benchmark_slim_dblp(benchmark):
    graph = load_dataset("dblp", scale=bench_scale(), seed=0)
    benchmark.pedantic(
        lambda: slim_on_graph(graph, max_rounds=60), rounds=1, iterations=1
    )
