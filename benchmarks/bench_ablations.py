"""Ablations of the design choices DESIGN.md calls out.

1. Model-cost term in the gain (Section IV-E): with the term the model
   keeps fewer/cheaper patterns; without it data cost compresses at
   least as far but the code tables grow.
2. Partial update scope: ``exhaustive`` matches Basic's model exactly;
   the paper's ``related`` heuristic computes fewer gains but may stop
   earlier (higher final DL).
3. Coreset encoder: multi-value coresets (SLIM, Section IV-F) versus
   singletons.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import bench_scale
from repro.config import CSPMConfig
from repro.core.miner import CSPM
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def dblp_graph():
    return load_dataset("dblp", scale=1.0 * bench_scale(), seed=0)


def test_ablation_model_cost(dblp_graph, report_writer, benchmark):
    with_cost = benchmark.pedantic(
        lambda: CSPM(config=CSPMConfig(include_model_cost=True)).fit(dblp_graph),
        rounds=1,
        iterations=1,
    )
    without_cost = CSPM(config=CSPMConfig(include_model_cost=False)).fit(dblp_graph)
    lines = [
        "Ablation: Section IV-E model-cost term in the candidate gain",
        f"{'variant':<16}{'total DL':>12}{'data DL':>12}{'model DL':>12}"
        f"{'merges':>9}",
    ]
    for label, result in (("with", with_cost), ("without", without_cost)):
        lines.append(
            f"{label:<16}{result.final_dl.total_bits:>12.1f}"
            f"{result.final_dl.data_bits:>12.1f}"
            f"{result.final_dl.model_bits:>12.1f}"
            f"{result.trace.num_iterations:>9}"
        )
    report_writer("ablation_model_cost", "\n".join(lines))
    # Ignoring the model cost merges at least as aggressively and
    # pushes the data cost at least as low...
    assert (
        without_cost.trace.num_iterations >= with_cost.trace.num_iterations
    )
    assert (
        without_cost.final_dl.data_leaf_bits
        <= with_cost.final_dl.data_leaf_bits + 1e-6
    )
    # ...but pays for it in code-table (model) bits.
    assert without_cost.final_dl.model_bits >= with_cost.final_dl.model_bits


def test_ablation_update_scope(dblp_graph, report_writer, benchmark):
    basic = benchmark.pedantic(
        lambda: CSPM(config=CSPMConfig(method="basic")).fit(dblp_graph), rounds=1, iterations=1
    )
    exhaustive = CSPM(config=CSPMConfig(method="partial", partial_update_scope="exhaustive")).fit(
        dblp_graph
    )
    related = CSPM(config=CSPMConfig(method="partial", partial_update_scope="related")).fit(
        dblp_graph
    )
    lines = [
        "Ablation: CSPM-Partial update scope (vs CSPM-Basic reference)",
        f"{'variant':<14}{'final DL':>12}{'merges':>9}{'gain evals':>12}",
    ]
    for label, result in (
        ("basic", basic),
        ("exhaustive", exhaustive),
        ("related", related),
    ):
        lines.append(
            f"{label:<14}{result.final_dl.total_bits:>12.1f}"
            f"{result.trace.num_iterations:>9}"
            f"{result.trace.total_gain_computations:>12,}"
        )
    report_writer("ablation_update_scope", "\n".join(lines))
    # Exhaustive partial == basic, with fewer gain computations.
    assert exhaustive.final_dl.total_bits == pytest.approx(
        basic.final_dl.total_bits, abs=1e-6
    )
    assert (
        exhaustive.trace.total_gain_computations
        < basic.trace.total_gain_computations
    )
    # The rdict heuristic computes fewer gains still, at some DL cost.
    assert (
        related.trace.total_gain_computations
        <= exhaustive.trace.total_gain_computations
    )
    assert related.final_dl.total_bits >= basic.final_dl.total_bits - 1e-6


def test_ablation_coreset_encoder(report_writer, benchmark):
    graph = load_dataset("usflight", scale=1.0, seed=0)
    benchmark.pedantic(
        lambda: CSPM(config=CSPMConfig(coreset_encoder="slim")).fit(graph), rounds=1, iterations=1
    )
    lines = [
        "Ablation: coreset encoder (Section IV-F step 1)",
        f"{'encoder':<12}{'coresets':>10}{'multi-value':>12}{'DL ratio':>10}"
        f"{'seconds':>9}",
    ]
    for encoder in ("singleton", "slim"):
        start = time.perf_counter()
        result = CSPM(config=CSPMConfig(coreset_encoder=encoder)).fit(graph)
        seconds = time.perf_counter() - start
        coresets = {star.coreset for star in result.astars}
        multi = sum(1 for c in coresets if len(c) > 1)
        lines.append(
            f"{encoder:<12}{len(coresets):>10}{multi:>12}"
            f"{result.compression_ratio:>10.3f}{seconds:>9.2f}"
        )
        if encoder == "singleton":
            assert multi == 0
    report_writer("ablation_coreset_encoder", "\n".join(lines))
