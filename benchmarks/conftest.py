"""Shared benchmark helpers.

Every benchmark prints the table/figure series it regenerates *and*
appends it to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.  ``REPRO_BENCH_SCALE`` (default 1.0) scales the
dataset sizes: pass e.g. ``REPRO_BENCH_SCALE=0.5`` for a faster pass.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    """Global workload multiplier for the benchmark suite."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def report_writer():
    """Writes a named report block to stdout and to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n"
        print(banner + text)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return write
