"""Fig. 6 + Section VI-B — qualitative pattern analysis.

Prints the most informative a-stars found in the DBLP, DBLP-Trend,
USFlight and Pokec analogues and checks that the planted correlations
the paper highlights are recovered:

* DBLP: a data-mining venue core keeps data-mining venues as leaves;
* USFlight: ({NbDepart-}, {NbDepart+, DelayArriv-});
* Pokec: rap with {rock, metal, pop, sladaky}; disko with oldies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.batch import fit_many
from repro.config import CSPMConfig
from repro.datasets import load_dataset

_DM_VENUES = {"ICDM", "EDBT", "PODS", "KDD", "SDM", "DMKD", "PAKDD"}
_YOUNG_TASTES = {"rock", "metal", "pop", "sladaky", "hiphop", "punk"}
_OLDER_TASTES = {"oldies", "folk", "country", "dychovka", "disko"}


@pytest.fixture(scope="module")
def results():
    scale = bench_scale()
    names, graphs = [], []
    for name, base_scale in (
        ("dblp", 1.0),
        ("dblp-trend", 1.0),
        ("usflight", 1.0),
        ("pokec", None),
    ):
        effective = None if base_scale is None else base_scale * scale
        names.append(name)
        graphs.append(load_dataset(name, scale=effective, seed=0))
    batch = fit_many(graphs, CSPMConfig())
    return {name: run.result for name, run in zip(names, batch)}


def _top_lines(result, core_value=None, k=5):
    stars = result.filter(min_leafset_size=2, core_value=core_value)
    return [f"  {star}" for star in stars[:k]]


def test_fig6_dblp_patterns(results, report_writer, benchmark):
    benchmark.pedantic(
        lambda: results["dblp"].filter(min_leafset_size=2), rounds=1, iterations=1
    )
    result = results["dblp"]
    lines = ["Fig. 6(a) analogue: DBLP patterns"] + _top_lines(result)
    # A data-mining-venue core should keep data-mining venues as leaves.
    dm_stars = [
        star
        for star in result.filter(min_leafset_size=2)
        if star.coreset & _DM_VENUES
    ]
    assert dm_stars, "no data-mining venue pattern found"
    best = dm_stars[0]
    overlap = len(best.leafset & _DM_VENUES) / len(best.leafset)
    assert overlap >= 0.5, f"leafset {set(best.leafset)} not venue-coherent"
    report_writer("fig6_dblp", "\n".join(lines))


def test_fig6_dblp_trend_patterns(results, report_writer, benchmark):
    benchmark.pedantic(
        lambda: results["dblp-trend"].filter(min_leafset_size=2),
        rounds=1,
        iterations=1,
    )
    result = results["dblp-trend"]
    lines = ["Fig. 6(b) analogue: DBLP-Trend patterns"] + _top_lines(result)
    # Trend-suffixed values must appear in mined patterns.
    top = result.filter(min_leafset_size=2)[:20]
    assert any(
        any(str(v).endswith(("+", "-", "=")) for v in star.leafset)
        for star in top
    )
    report_writer("fig6_dblp_trend", "\n".join(lines))


def test_usflight_pattern(results, report_writer, benchmark):
    benchmark.pedantic(
        lambda: results["usflight"].filter(core_value="NbDepart-"),
        rounds=1,
        iterations=1,
    )
    result = results["usflight"]
    lines = ["Section VI-B(2) analogue: USFlight patterns"]
    lines += _top_lines(result, core_value="NbDepart-", k=5)
    # The paper's example: ({NbDepart-}, {NbDepart+, DelayArriv-}).
    stars = result.filter(core_value="NbDepart-")
    covered = set()
    for star in stars:
        covered |= set(star.leafset)
    assert {"NbDepart+", "DelayArriv-"} <= covered
    report_writer("fig6_usflight", "\n".join(lines))


def test_fig6_pokec_patterns(results, report_writer, benchmark):
    benchmark.pedantic(
        lambda: results["pokec"].filter(min_leafset_size=2), rounds=1, iterations=1
    )
    result = results["pokec"]
    lines = ["Fig. 6(c) analogue: Pokec patterns"]
    lines += _top_lines(result, core_value="rap", k=3)
    lines += _top_lines(result, core_value="disko", k=3)
    # rap core -> young-taste leaves (rock/metal/pop/sladaky...).
    rap = result.filter(min_leafset_size=2, core_value="rap")
    assert rap, "no rap pattern"
    assert rap[0].leafset & _YOUNG_TASTES
    # disko core -> older tastes (oldies/disko...).
    disko = result.filter(min_leafset_size=2, core_value="disko")
    assert disko, "no disko pattern"
    assert disko[0].leafset & _OLDER_TASTES
    # The two communities' best patterns do not leak into each other.
    assert not (rap[0].leafset & _OLDER_TASTES)
    report_writer("fig6_pokec", "\n".join(lines))


def test_benchmark_pattern_ranking(benchmark, results):
    result = results["dblp"]
    benchmark(result.filter, min_leafset_size=2)
