"""Fig. 5 — gain update ratio per iteration, CSPM-Basic vs -Partial.

For each dataset the per-iteration update ratio (gains computed /
possible pairs) is recorded by the run trace.  CSPM-Basic recomputes
everything (ratio 1.0 throughout); CSPM-Partial touches only the
affected neighbourhood, so its curve sits far below — the effect the
paper plots in Fig. 5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.config import CSPMConfig
from repro.core.miner import CSPM
from repro.datasets import load_dataset

DATASETS = [
    ("DBLP", "dblp", 1.0),
    ("DBLP-Trend", "dblp-trend", 1.0),
    ("USFlight", "usflight", 1.0),
    ("Pokec", "pokec", None),
]


def _series_text(ratios, points=10):
    if not ratios:
        return "(no merges)"
    step = max(1, len(ratios) // points)
    sampled = ratios[::step][:points]
    return " ".join(f"{r:.3f}" for r in sampled)


@pytest.fixture(scope="module")
def traces():
    scale = bench_scale()
    collected = {}
    for label, name, base_scale in DATASETS:
        effective = None if base_scale is None else base_scale * scale
        graph = load_dataset(name, scale=effective, seed=0)
        partial = CSPM(config=CSPMConfig(method="partial")).fit(graph).trace
        # Basic's ratio is 1.0 by construction; run it only on the
        # smaller graphs to keep the suite fast (Pokec mirrors the
        # paper's timeout).
        basic = None
        if label != "Pokec":
            basic = CSPM(config=CSPMConfig(method="basic")).fit(graph).trace
        collected[label] = (basic, partial)
    return collected


def test_fig5_update_ratio(traces, report_writer, benchmark):
    benchmark.pedantic(
        lambda: {k: v[1].update_ratios() for k, v in traces.items()},
        rounds=1,
        iterations=1,
    )
    lines = ["Fig. 5 analogue: gain update ratio per iteration"]
    for label, (basic, partial) in traces.items():
        ratios = partial.update_ratios()
        mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
        lines.append(f"\n{label} ({partial.num_iterations} iterations)")
        lines.append(f"  CSPM-Partial mean ratio: {mean_ratio:.4f}")
        lines.append(f"  CSPM-Partial sampled   : {_series_text(ratios)}")
        if basic is not None:
            basic_ratios = basic.update_ratios()
            basic_mean = sum(basic_ratios) / len(basic_ratios)
            lines.append(f"  CSPM-Basic   mean ratio: {basic_mean:.4f}")
            # The paper's observation: Partial's curve sits below.
            # (Basic's ratio used to be exactly 1.0 by construction; with
            # overlap-driven generation it scans only the candidate pairs
            # that can gain, so it now sits at or below 1.0.)
            assert mean_ratio < basic_mean
            assert basic_mean <= 1.0 + 1e-9
        assert all(0.0 <= r <= 1.0 for r in ratios)
    report_writer("fig5_update_ratio", "\n".join(lines))


def test_fig5_total_gain_computations(traces, report_writer, benchmark):
    benchmark.pedantic(
        lambda: [v[1].total_gain_computations for v in traces.values()],
        rounds=1,
        iterations=1,
    )
    lines = ["Fig. 5 companion: total gain computations"]
    for label, (basic, partial) in traces.items():
        line = f"{label:<12} partial={partial.total_gain_computations:>12,}"
        if basic is not None:
            line += f"  basic={basic.total_gain_computations:>12,}"
            assert (
                partial.total_gain_computations < basic.total_gain_computations
            )
        lines.append(line)
    report_writer("fig5_gain_computations", "\n".join(lines))
