"""Table IV — node attribute completion with and without CSPM.

For each citation-network analogue, every baseline is evaluated plain
and fused with the CSPM scoring module (Fig. 7).  The shape under
test: the average improvement row is positive for every metric, and
the weakest baselines (NeighAggre, VAE) gain the most — the paper's
headline +30.68% is on DBLP/NeighAggre/Recall@3.

DBLP is evaluated at smaller K (3/5/10) exactly as in the paper,
because its nodes carry fewer attribute values.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale
from repro.completion.experiment import run_completion_experiment
from repro.config import CSPMConfig
from repro.datasets import load_dataset

MODELS = ["neighaggre", "vae", "gcn", "gat", "graphsage", "sat"]
FAST_EPOCHS = {name: {"epochs": 60} for name in MODELS if name != "neighaggre"}

BLOCKS = [
    ("Cora", "cora", 0.12, (10, 20, 50)),
    ("Citeseer", "citeseer", 0.12, (10, 20, 50)),
    ("DBLP", "dblp", 1.0, (3, 5, 10)),
]


@pytest.fixture(scope="module")
def reports():
    scale = bench_scale()
    produced = {}
    for label, name, base_scale, ks in BLOCKS:
        graph = load_dataset(name, scale=base_scale * scale, seed=3)
        produced[label] = run_completion_experiment(
            graph,
            dataset_name=label,
            ks=ks,
            models=MODELS,
            test_fraction=0.4,
            seed=0,
            model_kwargs=FAST_EPOCHS,
            cspm_config=CSPMConfig(method="partial"),
        )
    return produced


@pytest.mark.parametrize("label", [b[0] for b in BLOCKS])
def test_table4_block(label, reports, report_writer, benchmark):
    benchmark.pedantic(lambda: reports[label].improvement(), rounds=1, iterations=1)
    report = reports[label]
    report_writer(f"table4_{label.lower()}", report.as_table())
    improvement = report.improvement()
    positive = [key for key, value in improvement.items() if value > 0]
    # Shape: CSPM fusion helps on (nearly) every metric...
    assert len(positive) >= len(improvement) - 1, improvement
    # ...and the overall average improvement is clearly positive.
    assert sum(improvement.values()) / len(improvement) > 0


def test_table4_weak_models_gain_most(reports, report_writer, benchmark):
    """The paper's strongest lifts are for NeighAggre and VAE."""
    benchmark.pedantic(
        lambda: [r.improvement() for r in reports.values()], rounds=1, iterations=1
    )
    lines = ["Relative Recall gains by model (first K of each block)"]
    for label, report in reports.items():
        key = f"Recall@{report.ks[0]}"
        gains = {}
        for model in report.plain:
            base = report.plain[model][key]
            if base > 0:
                gains[model] = 100.0 * (report.fused[model][key] - base) / base
        lines.append(f"{label}: " + ", ".join(
            f"{m}={g:+.1f}%" for m, g in gains.items()
        ))
        weak = max(gains.get("neighaggre", 0.0), gains.get("vae", 0.0))
        strong = gains.get("sat", gains.get("gcn", 0.0))
        assert weak >= strong - 5.0  # weak models gain at least as much
    report_writer("table4_gains_by_model", "\n".join(lines))
