"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py
develop`` provides the legacy editable path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
